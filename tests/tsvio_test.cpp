//===- tests/tsvio_test.cpp - Facts directory round-trip ------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The paper's pipeline consumes extracted facts from disk; this checks
// that writing a FactDB to a Doop-style facts directory and reading it
// back is lossless, including analysis-result equality.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/Tsv.h"
#include "workload/Generator.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>

using namespace ctp;
using ctx::Abstraction;

namespace {

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "/ctp_facts_" + Tag;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

TEST(TsvIOTest, RoundTripPreservesEverything) {
  facts::FactDB DB = facts::extract(workload::figure1().P);
  std::string Dir = freshDir("fig1");
  ASSERT_EQ(facts::writeFactsDir(DB, Dir), "");

  facts::FactDB Back;
  ASSERT_EQ(facts::readFactsDir(Dir, Back), "");
  EXPECT_EQ(Back.VarNames, DB.VarNames);
  EXPECT_EQ(Back.HeapNames, DB.HeapNames);
  EXPECT_EQ(Back.MethodNames, DB.MethodNames);
  EXPECT_EQ(Back.EntryMethods, DB.EntryMethods);
  EXPECT_EQ(Back.numInputFacts(), DB.numInputFacts());
  EXPECT_EQ(Back.VarParent, DB.VarParent);
  EXPECT_EQ(Back.HeapParent, DB.HeapParent);
  EXPECT_EQ(Back.MethodClass, DB.MethodClass);
  std::filesystem::remove_all(Dir);
}

TEST(TsvIOTest, AnalysisFromDiskMatchesInMemory) {
  workload::WorkloadParams Params;
  Params.Drivers = 2;
  Params.Scenarios = 3;
  Params.Seed = 31;
  facts::FactDB DB = facts::extract(workload::generate(Params));
  std::string Dir = freshDir("gen");
  ASSERT_EQ(facts::writeFactsDir(DB, Dir), "");
  facts::FactDB Back;
  ASSERT_EQ(facts::readFactsDir(Dir, Back), "");

  auto Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results A = analysis::solve(DB, Cfg);
  analysis::Results B = analysis::solve(Back, Cfg);
  EXPECT_EQ(A.Stat.NumPts, B.Stat.NumPts);
  EXPECT_EQ(A.ciPts(), B.ciPts());
  EXPECT_EQ(A.ciCall(), B.ciCall());
  std::filesystem::remove_all(Dir);
}

TEST(TsvIOTest, MissingDirectoryErrors) {
  facts::FactDB DB;
  EXPECT_NE(facts::readFactsDir("/nonexistent/ctp/facts", DB), "");
}

TEST(TsvIOTest, NulByteRejectedWithFileLineDiagnostic) {
  facts::FactDB DB = facts::extract(workload::figure7().P);
  std::string Dir = freshDir("nul");
  ASSERT_EQ(facts::writeFactsDir(DB, Dir), "");
  {
    std::ofstream Out(Dir + "/Assign.facts",
                      std::ios::app | std::ios::binary);
    Out << "bad" << '\0' << "field\talso\n";
  }
  // Strict: aborts with the file, line, and reason.
  facts::FactDB Strict;
  std::string Err = facts::readFactsDir(Dir, Strict);
  EXPECT_NE(Err.find("Assign.facts:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("NUL"), std::string::npos) << Err;
  // Lenient: counted and warned about, not dropped silently.
  facts::FactDB Lenient;
  facts::FactsReadOptions Opts;
  Opts.Lenient = true;
  facts::FactsReadReport Report;
  ASSERT_EQ(facts::readFactsDir(Dir, Lenient, Opts, &Report), "");
  EXPECT_EQ(Report.SkippedLines, 1u);
  ASSERT_EQ(Report.Warnings.size(), 1u);
  EXPECT_NE(Report.Warnings[0].find("NUL"), std::string::npos)
      << Report.Warnings[0];
  std::filesystem::remove_all(Dir);
}

TEST(TsvIOTest, OverlongLineRejectedWithFileLineDiagnostic) {
  facts::FactDB DB = facts::extract(workload::figure7().P);
  std::string Dir = freshDir("overlong");
  ASSERT_EQ(facts::writeFactsDir(DB, Dir), "");
  {
    std::ofstream Out(Dir + "/Load.facts", std::ios::app);
    Out << std::string(MaxTsvLineBytes + 1, 'a') << "\n";
  }
  facts::FactDB Strict;
  std::string Err = facts::readFactsDir(Dir, Strict);
  EXPECT_NE(Err.find("Load.facts:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("exceeds"), std::string::npos) << Err;
  facts::FactDB Lenient;
  facts::FactsReadOptions Opts;
  Opts.Lenient = true;
  facts::FactsReadReport Report;
  ASSERT_EQ(facts::readFactsDir(Dir, Lenient, Opts, &Report), "");
  EXPECT_EQ(Report.SkippedLines, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(TsvTest, RejectListCarriesLineNumbers) {
  std::string Dir = freshDir("rejects");
  std::string Path = Dir + "/t.tsv";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "good\trow\n"
        << "nul" << '\0' << "row\n"
        << "another\tgood\n";
  }
  std::vector<TsvLine> Rows;
  std::vector<TsvReject> Rejects;
  ASSERT_TRUE(readTsvLines(Path, Rows, &Rejects));
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].LineNo, 1u);
  EXPECT_EQ(Rows[1].LineNo, 3u);
  ASSERT_EQ(Rejects.size(), 1u);
  EXPECT_EQ(Rejects[0].LineNo, 2u);
  EXPECT_NE(Rejects[0].Reason.find("NUL"), std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(TsvIOTest, UnknownNameRejected) {
  facts::FactDB DB = facts::extract(workload::figure7().P);
  std::string Dir = freshDir("bad");
  ASSERT_EQ(facts::writeFactsDir(DB, Dir), "");
  // Corrupt one fact file with an undeclared variable name.
  std::vector<std::vector<std::string>> Rows;
  ASSERT_TRUE(readTsvFile(Dir + "/Assign.facts", Rows));
  Rows.push_back({"no_such_var", "also_missing"});
  ASSERT_TRUE(writeTsvFile(Dir + "/Assign.facts", Rows));
  facts::FactDB Back;
  EXPECT_NE(facts::readFactsDir(Dir, Back), "");
  std::filesystem::remove_all(Dir);
}

} // namespace
