//===- tests/type_loss_test.cpp - Theorem 6.2's type-sensitivity gap ------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Section 6 proves transformer strings can be *less* precise than context
// strings under type sensitivity: "the implied context information of a
// fact pts(Y,H,t̂) is that Y ... points to ... for all reachable method
// contexts M of any method implemented in type t: method reachability
// information is merged by the implied interpretation."
//
// This is a minimal program exhibiting the loss. Two methods go1/go2 of
// the same class Shared each allocate a Util receiver locally and pass
// their parameter through Util.id. Because both Util allocation sites
// live in class Shared and both receivers' transformations are ε, the two
// id call edges collapse to the *same* transformer (entries = [Util's
// declaring class]) — so the RET rule flows go2's value back into go1's
// result and vice versa. The context-string edges keep the callers'
// distinct second context elements ([Shared, C1] vs [Shared, C2]) and
// block the cross flow.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "ir/Builder.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;

namespace {

struct LossProgram {
  facts::FactDB DB;
  VarId RGo1, RGo2, RA, RB;
  HeapId H1, H2;
};

LossProgram build() {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Util = B.addClass("Util", Obj);
  MethodId Id = B.addMethod(Util, "id", 1);
  B.addReturn(Id, B.formal(Id, 0));
  SigId IdSig = B.signature("id", 1);

  // Two methods of one class, each with its own local Util receiver.
  TypeId Shared = B.addClass("Shared", Obj);
  MethodId Go1 = B.addMethod(Shared, "go1", 1);
  VarId U1 = B.addLocal(Go1, "u");
  B.addNew(Go1, U1, Util, "usite1");
  VarId R1 = B.addLocal(Go1, "r");
  B.addVirtualCall(Go1, U1, IdSig, {B.formal(Go1, 0)}, R1, "I1");
  B.addReturn(Go1, R1);
  MethodId Go2 = B.addMethod(Shared, "go2", 1);
  VarId U2 = B.addLocal(Go2, "u");
  B.addNew(Go2, U2, Util, "usite2");
  VarId R2 = B.addLocal(Go2, "r");
  B.addVirtualCall(Go2, U2, IdSig, {B.formal(Go2, 0)}, R2, "I2");
  B.addReturn(Go2, R2);

  // Shared instances created inside two different classes, so go1 and
  // go2 run under distinct type contexts [Shared, C1] / [Shared, C2].
  TypeId C1 = B.addClass("C1", Obj);
  MethodId Mk1 = B.addMethod(C1, "make1", 0);
  VarId S1v = B.addLocal(Mk1, "s");
  B.addNew(Mk1, S1v, Shared, "s1site");
  B.addReturn(Mk1, S1v);
  TypeId C2 = B.addClass("C2", Obj);
  MethodId Mk2 = B.addMethod(C2, "make2", 0);
  VarId S2v = B.addLocal(Mk2, "s");
  B.addNew(Mk2, S2v, Shared, "s2site");
  B.addReturn(Mk2, S2v);

  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId F1 = B.addLocal(Main, "f1");
  B.addNew(Main, F1, C1, "hf1");
  VarId F2 = B.addLocal(Main, "f2");
  B.addNew(Main, F2, C2, "hf2");
  VarId S1 = B.addLocal(Main, "s1");
  B.addVirtualCall(Main, F1, B.signature("make1", 0), {}, S1, "mk1");
  VarId S2 = B.addLocal(Main, "s2");
  B.addVirtualCall(Main, F2, B.signature("make2", 0), {}, S2, "mk2");
  LossProgram P;
  VarId XA = B.addLocal(Main, "xa");
  P.H1 = B.addNew(Main, XA, Obj, "h1");
  VarId XB = B.addLocal(Main, "xb");
  P.H2 = B.addNew(Main, XB, Obj, "h2");
  P.RA = B.addLocal(Main, "ra");
  B.addVirtualCall(Main, S1, B.signature("go1", 1), {XA}, P.RA, "cg1");
  P.RB = B.addLocal(Main, "rb");
  B.addVirtualCall(Main, S2, B.signature("go2", 1), {XB}, P.RB, "cg2");
  P.RGo1 = R1;
  P.RGo2 = R2;
  P.DB = facts::extract(B.take());
  return P;
}

using U32s = std::vector<std::uint32_t>;

TEST(TypeLossTest, TransformerLosesPrecisionAtTwoTypeH) {
  LossProgram P = build();
  analysis::Results Cs =
      analysis::solve(P.DB, ctx::twoTypeH(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(P.DB, ctx::twoTypeH(Abstraction::TransformerString));

  // Context strings keep the two flows apart.
  EXPECT_EQ(Cs.pointsTo(P.RGo1), (U32s{P.H1}));
  EXPECT_EQ(Cs.pointsTo(P.RGo2), (U32s{P.H2}));
  // Transformer strings merge them — the paper's "(+n)" column.
  EXPECT_EQ(Ts.pointsTo(P.RGo1), (U32s{P.H1, P.H2}));
  EXPECT_EQ(Ts.pointsTo(P.RGo2), (U32s{P.H1, P.H2}));

  // The loss is one-directional (Theorem 6.1 still holds): ts ⊇ cs.
  auto CsCi = Cs.ciPts(), TsCi = Ts.ciPts();
  EXPECT_TRUE(std::includes(TsCi.begin(), TsCi.end(), CsCi.begin(),
                            CsCi.end()));
  EXPECT_EQ(TsCi.size(), CsCi.size() + 2);
}

TEST(TypeLossTest, NoLossUnderObjectSensitivity) {
  // The same program under 2-object+H: allocation-site contexts keep the
  // two Util receivers distinct, so both abstractions agree (Thm 6.2).
  LossProgram P = build();
  analysis::Results Cs =
      analysis::solve(P.DB, ctx::twoObjectH(Abstraction::ContextString));
  analysis::Results Ts = analysis::solve(
      P.DB, ctx::twoObjectH(Abstraction::TransformerString));
  EXPECT_EQ(Cs.ciPts(), Ts.ciPts());
  EXPECT_EQ(Ts.pointsTo(P.RGo1), (U32s{P.H1}));
  EXPECT_EQ(Ts.pointsTo(P.RA), (U32s{P.H1}));
}

TEST(TypeLossTest, NoLossUnderCallSiteSensitivity) {
  LossProgram P = build();
  ctx::Config Cs2{Abstraction::ContextString, ctx::Flavour::CallSite, 2,
                  1};
  ctx::Config Ts2{Abstraction::TransformerString, ctx::Flavour::CallSite,
                  2, 1};
  EXPECT_EQ(analysis::solve(P.DB, Cs2).ciPts(),
            analysis::solve(P.DB, Ts2).ciPts());
}

TEST(TypeLossTest, TopLevelResultsUnaffectedHere) {
  // The cross flow stops inside Shared: main's ra/rb stay precise even
  // under the transformer abstraction (return to main still filters on
  // the distinct caller edges). The loss is real but local — matching
  // the paper's observation that it is marginal in practice.
  LossProgram P = build();
  analysis::Results Ts =
      analysis::solve(P.DB, ctx::twoTypeH(Abstraction::TransformerString));
  EXPECT_EQ(Ts.pointsTo(P.RA), (U32s{P.H1}));
  EXPECT_EQ(Ts.pointsTo(P.RB), (U32s{P.H2}));
}

} // namespace
