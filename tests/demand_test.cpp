//===- tests/demand_test.cpp - Demand-driven query engine -----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Tests for the Section-10 future-work direction: demand-driven queries.
// The demand engine answers per-variable may-point-to queries by growing
// a relevant subgraph; its answers must always contain the exhaustive
// context-insensitive oracle's (it assumes methods reachable, like
// Sridharan & Bodík's initial approximation).
//
//===----------------------------------------------------------------------===//

#include "cfl/Demand.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "ir/Builder.h"
#include "workload/Generator.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <map>

using namespace ctp;
using namespace ctp::ir;

namespace {

using U32s = std::vector<std::uint32_t>;

std::map<std::uint32_t, U32s> oraclePts(const facts::FactDB &DB) {
  std::map<std::uint32_t, U32s> Out;
  for (const auto &P : cfl::solveInsensitive(DB).Pts)
    Out[P[0]].push_back(P[1]);
  return Out;
}

TEST(DemandTest, DirectAndAssignChain) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId H = B.addNew(Main, X, Obj, "h");
  VarId Y = B.addLocal(Main, "y");
  B.addAssign(Main, Y, X);
  VarId Z = B.addLocal(Main, "z");
  B.addAssign(Main, Z, Y);
  facts::FactDB DB = facts::extract(B.take());

  cfl::DemandSolver D(DB);
  EXPECT_EQ(D.query(Z).Heaps, (U32s{H}));
  EXPECT_FALSE(D.query(Z).BudgetExceeded);
  // The query for x should touch fewer variables than for z.
  EXPECT_LT(D.query(X).RelevantVars, D.query(Z).RelevantVars);
}

TEST(DemandTest, FieldMatchIsObjectSensitive) {
  // Two boxes, one queried load: only the matching store's value flows.
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Box = B.addClass("Box", Obj);
  FieldId F = B.addField("f");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId B1 = B.addLocal(Main, "b1");
  B.addNew(Main, B1, Box, "hb1");
  VarId B2 = B.addLocal(Main, "b2");
  B.addNew(Main, B2, Box, "hb2");
  VarId V1 = B.addLocal(Main, "v1");
  HeapId H1 = B.addNew(Main, V1, Obj, "h1");
  VarId V2 = B.addLocal(Main, "v2");
  B.addNew(Main, V2, Obj, "h2");
  B.addStore(Main, B1, F, V1);
  B.addStore(Main, B2, F, V2);
  VarId W = B.addLocal(Main, "w");
  B.addLoad(Main, W, B1, F);
  facts::FactDB DB = facts::extract(B.take());

  cfl::DemandSolver D(DB);
  EXPECT_EQ(D.query(W).Heaps, (U32s{H1}));
}

TEST(DemandTest, VirtualCallAndReturn) {
  workload::Figure1Program F = workload::figure1();
  facts::FactDB DB = facts::extract(F.P);
  cfl::DemandSolver D(DB);
  // CI answers on the Figure-1 program (matches the oracle).
  EXPECT_EQ(D.query(F.X1).Heaps, (U32s{F.H1, F.H2}));
  EXPECT_EQ(D.query(F.Z).Heaps, (U32s{F.H1}));
  EXPECT_TRUE(D.mayAlias(F.X, F.X1));
}

TEST(DemandTest, BudgetExhaustionIsSoundAndFlagged) {
  workload::Figure1Program F = workload::figure1();
  facts::FactDB DB = facts::extract(F.P);
  cfl::DemandSolver D(DB);
  cfl::DemandAnswer A = D.query(F.X2, /*Budget=*/2);
  EXPECT_TRUE(A.BudgetExceeded);
  // Fallback answer is every heap site — sound by construction.
  EXPECT_EQ(A.Heaps.size(), DB.numHeaps());
}

struct DemandProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DemandProperty, ContainsOracleAnswerForEveryVariable) {
  workload::WorkloadParams Params;
  Params.DataClasses = 3;
  Params.WrapperChains = 2;
  Params.Factories = 2;
  Params.Containers = 2;
  Params.PolyBases = 2;
  Params.Drivers = 3;
  Params.Scenarios = 4;
  Params.PrivateScenarios = 4;
  Params.AstScenarios = GetParam() % 2 ? 2 : 0;
  Params.Seed = GetParam();
  facts::FactDB DB = facts::extract(workload::generate(Params));

  auto Oracle = oraclePts(DB);
  cfl::DemandSolver D(DB);
  for (std::uint32_t V = 0; V < DB.numVars(); ++V) {
    cfl::DemandAnswer A = D.query(V);
    ASSERT_FALSE(A.BudgetExceeded) << "var " << V;
    auto It = Oracle.find(V);
    if (It == Oracle.end())
      continue;
    EXPECT_TRUE(std::includes(A.Heaps.begin(), A.Heaps.end(),
                              It->second.begin(), It->second.end()))
        << "demand answer for " << DB.VarNames[V]
        << " misses oracle facts (seed " << GetParam() << ")";
  }
}

TEST_P(DemandProperty, QueriesAreCheaperThanExhaustive) {
  workload::WorkloadParams Params;
  Params.Drivers = 4;
  Params.Scenarios = 6;
  Params.PrivateScenarios = 6;
  Params.Seed = GetParam() ^ 0xD00D;
  facts::FactDB DB = facts::extract(workload::generate(Params));
  cfl::DemandSolver D(DB);
  // A local directly assigned from an allocation should not explore the
  // whole program.
  for (const auto &F : DB.AssignNews) {
    cfl::DemandAnswer A = D.query(F.To);
    EXPECT_LT(A.RelevantVars, DB.numVars());
    EXPECT_FALSE(A.Heaps.empty());
    break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

} // namespace
