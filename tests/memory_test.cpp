//===- tests/memory_test.cpp - Memory governor units ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Unit coverage for the in-process memory governor (support/Memory.h):
// arming and watermark math, noted-byte pressure estimation, sticky
// new-handler trips and per-rung re-arming, the CTP_MEM_FAULT simulated
// pressure windows, and the BudgetMeter mapping from governor pressure to
// TerminationReason::MemoryBudget. The end-to-end RLIMIT_AS drill (a
// process that previously SIGABRTed now degrades to exit 3 with
// byte-identical results) lives in crashloop.sh --oom (ctest: oom_drill).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "support/Memory.h"

#include "gtest/gtest.h"

using namespace ctp;

namespace {

/// Every test leaves the process-global governor and fault state clean;
/// a leaked arming would poison unrelated tests in this binary.
struct GovernorScope {
  GovernorScope() {
    fault::reset();
    memgov::disable();
  }
  ~GovernorScope() {
    fault::reset();
    memgov::disable();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Arming and watermark math.
//===----------------------------------------------------------------------===//

TEST(MemoryGovernor, DisengagedPollsAreInert) {
  GovernorScope Scope;
  EXPECT_FALSE(memgov::engaged());
  EXPECT_FALSE(memgov::governed());
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
  EXPECT_EQ(memgov::state(), memgov::Pressure::Ok);
  EXPECT_EQ(memgov::budgetBytes(), 0u);
}

TEST(MemoryGovernor, GovernMbArmsAndDisableResets) {
  GovernorScope Scope;
  memgov::governMb(64);
  EXPECT_TRUE(memgov::governed());
  EXPECT_TRUE(memgov::engaged());
  EXPECT_EQ(memgov::budgetBytes(), 64ull << 20);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
  memgov::disable();
  EXPECT_FALSE(memgov::governed());
  EXPECT_EQ(memgov::budgetBytes(), 0u);
  EXPECT_EQ(memgov::softTrips(), 0u);
  EXPECT_EQ(memgov::hardTrips(), 0u);
}

TEST(MemoryGovernor, GovernMbZeroIsANoOp) {
  GovernorScope Scope;
  memgov::governMb(0);
  EXPECT_FALSE(memgov::governed());
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
}

TEST(MemoryGovernor, TinyBudgetIsFlooredAtCurrentRss) {
  GovernorScope Scope;
  // The process is far past a 1 MiB budget already; without the
  // RSS-plus-headroom floor the very first poll would trip Hard and a
  // ladder descent could never make progress. The floor guarantees Ok
  // at arming time regardless of what earlier rungs left resident.
  memgov::governMb(1);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
  EXPECT_EQ(memgov::hardTrips(), 0u);
}

//===----------------------------------------------------------------------===//
// Noted-byte pressure estimation.
//===----------------------------------------------------------------------===//

TEST(MemoryGovernor, NotedBytesCrossTheWatermarks) {
  GovernorScope Scope;
  // A budget so large that the fractional watermarks dwarf both the
  // real RSS and its headroom floor: soft at ~34 GiB, hard at ~38 GiB.
  // Noting (not allocating) bytes walks the estimate across them.
  memgov::governMb(40960);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);

  memgov::noteBytes(36ll << 30); // ~36 GiB: past soft, short of hard.
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Soft);
  EXPECT_EQ(memgov::state(), memgov::Pressure::Soft);
  EXPECT_EQ(memgov::softTrips(), 1u);
  // A sustained plateau is one trip, not one per poll.
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Soft);
  EXPECT_EQ(memgov::softTrips(), 1u);

  memgov::noteBytes(6ll << 30); // ~42 GiB total: past hard.
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Hard);
  EXPECT_EQ(memgov::hardTrips(), 1u);

  // Releasing the noted bytes (a dropped cache, a freed relation)
  // brings the estimate back under the watermarks.
  memgov::noteBytes(-(42ll << 30));
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
}

//===----------------------------------------------------------------------===//
// The emergency new handler.
//===----------------------------------------------------------------------===//

TEST(MemoryGovernor, SimulatedAllocationFailureIsStickyUntilRearm) {
  GovernorScope Scope;
  memgov::governMb(64);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
  // The handler body: reserve released, sticky hard trip flipped. Every
  // later poll reports Hard no matter what usage says — the process has
  // proven it is at the wall, and only a re-arm (the next ladder rung)
  // declares the descent's recovery.
  memgov::simulateAllocationFailure();
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Hard);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Hard);
  EXPECT_GE(memgov::hardTrips(), 1u);
  memgov::governMb(64); // Re-arm: clears the sticky trip.
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
}

//===----------------------------------------------------------------------===//
// Simulated pressure windows (CTP_MEM_FAULT).
//===----------------------------------------------------------------------===//

TEST(MemoryFaults, WindowFiresAndDisarmsItself) {
  GovernorScope Scope;
  // Window [2, 4): polls 0 and 1 are clean, 2 and 3 report Soft, and
  // the poll after the window disarms the fault entirely.
  fault::armMemFault(fault::MemFault::SoftPressure, 2, 2);
  EXPECT_TRUE(fault::memFaultActive());
  EXPECT_TRUE(memgov::engaged()) << "an armed fault must engage polls";
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);   // poll 0
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);   // poll 1
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Soft); // poll 2
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Soft); // poll 3
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);   // past: disarmed
  EXPECT_FALSE(fault::memFaultActive());
  EXPECT_FALSE(memgov::engaged());
}

TEST(MemoryFaults, ArmByNameParsesTheDrillGrammar) {
  GovernorScope Scope;
  EXPECT_TRUE(fault::armMemFaultByName("soft@5x10"));
  EXPECT_TRUE(fault::memFaultActive());
  fault::reset();
  EXPECT_TRUE(fault::armMemFaultByName("hard")); // Missing @N means @0.
  fault::reset();
  EXPECT_TRUE(fault::armMemFaultByName("badalloc@1"));
  fault::reset();
  EXPECT_FALSE(fault::armMemFaultByName("gruesome@3"));
  EXPECT_FALSE(fault::memFaultActive());
}

TEST(MemoryFaults, BadAllocFaultRunsTheHandlerBody) {
  GovernorScope Scope;
  memgov::governMb(64);
  fault::armMemFault(fault::MemFault::BadAlloc, 0);
  // The forced failure runs the real handler body (reserve release +
  // sticky trip) without exhausting anything — sanitizer-safe.
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Hard);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Hard) << "trip must stick";
  memgov::governMb(64);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Ok);
}

TEST(MemoryFaults, StateReadsOkOnceDisengaged) {
  GovernorScope Scope;
  // Regression: state() used to return the last stored pressure even
  // after the governor disengaged, so a service kept shedding
  // admissions forever after a fault drill disarmed mid-burst.
  fault::armMemFault(fault::MemFault::HardPressure, 0, 1000);
  EXPECT_EQ(memgov::poll(), memgov::Pressure::Hard);
  EXPECT_EQ(memgov::state(), memgov::Pressure::Hard);
  fault::reset(); // Disengages (no budget governed).
  EXPECT_FALSE(memgov::engaged());
  EXPECT_EQ(memgov::state(), memgov::Pressure::Ok);
}

//===----------------------------------------------------------------------===//
// BudgetMeter integration.
//===----------------------------------------------------------------------===//

TEST(MemoryBudgetMeter, SpecArmsTheGovernor) {
  GovernorScope Scope;
  BudgetSpec S;
  S.MemBudgetMb = 64;
  BudgetMeter M(S);
  EXPECT_TRUE(memgov::governed());
  EXPECT_EQ(memgov::budgetBytes(), 64ull << 20);
  EXPECT_FALSE(M.poll().has_value());
}

TEST(MemoryBudgetMeter, PressureMapsToMemoryBudget) {
  GovernorScope Scope;
  fault::armMemFault(fault::MemFault::SoftPressure, 0, 1u << 30);
  BudgetSpec S; // No numeric limits: pressure alone must trip it.
  BudgetMeter M(S);
  auto Term = M.poll();
  ASSERT_TRUE(Term.has_value());
  EXPECT_EQ(*Term, TerminationReason::MemoryBudget);
  // Sticky, like every other exhaustion.
  EXPECT_EQ(M.reason(), TerminationReason::MemoryBudget);
  ASSERT_TRUE(M.poll().has_value());
  EXPECT_EQ(*M.poll(), TerminationReason::MemoryBudget);
}

TEST(MemoryBudgetMeter, UnlimitedDefaultMeterHonoursPressure) {
  GovernorScope Scope;
  // A per-query meter in a governed service is "unlimited" but memory
  // pressure is process-wide: it must still stop the query.
  fault::armMemFault(fault::MemFault::HardPressure, 0, 1u << 30);
  BudgetMeter M((BudgetSpec()));
  auto Term = M.poll();
  ASSERT_TRUE(Term.has_value());
  EXPECT_EQ(*Term, TerminationReason::MemoryBudget);
}

TEST(MemoryBudgetMeter, ScaledForRungHalvesTheMemBudget) {
  BudgetSpec S;
  S.MemBudgetMb = 100;
  EXPECT_EQ(S.scaledForRung(0).MemBudgetMb, 100u);
  EXPECT_EQ(S.scaledForRung(1).MemBudgetMb, 50u);
  EXPECT_EQ(S.scaledForRung(2).MemBudgetMb, 25u);
  EXPECT_EQ(S.scaledForRung(63).MemBudgetMb, 1u); // Never below 1.
  BudgetSpec U;                                   // Unlimited stays so.
  EXPECT_EQ(U.scaledForRung(3).MemBudgetMb, 0u);
}

//===----------------------------------------------------------------------===//
// RSS probes.
//===----------------------------------------------------------------------===//

TEST(MemoryRss, ProbesReportPlausibleValues) {
#if defined(__linux__)
  const std::uint64_t Cur = memgov::currentRssBytes();
  const std::uint64_t Peak = memgov::peakRssBytes();
  EXPECT_GT(Cur, 0u);
  EXPECT_GT(Peak, 0u);
  // Peak is a high-water mark: it can never be meaningfully below the
  // current residency (allow slack for the race between the two reads).
  EXPECT_GE(Peak + (4ull << 20), Cur);
#else
  SUCCEED() << "RSS probes are best-effort off Linux";
#endif
}
