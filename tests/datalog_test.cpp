//===- tests/datalog_test.cpp - Generic Datalog engine tests --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "datalog/Engine.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <set>

using namespace ctp;
using namespace ctp::datalog;

namespace {

Term v(VarIdx V) { return Term::var(V); }
Term c(Value C) { return Term::constant(C); }

std::set<std::pair<Value, Value>> pairs(const Relation &R) {
  std::set<std::pair<Value, Value>> Out;
  for (const Tuple &T : R.rows())
    Out.insert({T[0], T[1]});
  return Out;
}

TEST(RelationTest, InsertAndDedup) {
  Relation R("r", 2);
  EXPECT_TRUE(R.insert({1, 2}));
  EXPECT_FALSE(R.insert({1, 2}));
  EXPECT_TRUE(R.insert({2, 1}));
  EXPECT_EQ(R.size(), 2u);
  EXPECT_TRUE(R.contains({1, 2}));
  EXPECT_FALSE(R.contains({9, 9}));
}

TEST(RelationTest, IndexProbe) {
  Relation R("r", 3);
  R.insert({1, 10, 100});
  R.insert({1, 20, 200});
  R.insert({2, 10, 300});
  R.ensureIndex(0b001); // Key on column 0.
  EXPECT_EQ(R.probe(0b001, {1}).size(), 2u);
  EXPECT_EQ(R.probe(0b001, {2}).size(), 1u);
  EXPECT_EQ(R.probe(0b001, {3}).size(), 0u);
  R.ensureIndex(0b011); // Key on columns 0 and 1.
  EXPECT_EQ(R.probe(0b011, {1, 20}).size(), 1u);
  // Index stays current across later inserts.
  R.insert({1, 30, 400});
  EXPECT_EQ(R.probe(0b001, {1}).size(), 3u);
}

TEST(EngineTest, TransitiveClosure) {
  Program P;
  std::uint32_t Edge = P.addRelation("edge", 2);
  std::uint32_t Path = P.addRelation("path", 2);
  // Chain 0 -> 1 -> 2 -> 3 plus a cycle back 3 -> 0.
  P.addFact(Edge, {0, 1});
  P.addFact(Edge, {1, 2});
  P.addFact(Edge, {2, 3});
  P.addFact(Edge, {3, 0});

  {
    Rule R;
    R.Head = {Path, {v(0), v(1)}};
    R.Body = {{Edge, {v(0), v(1)}}};
    R.NumVars = 2;
    P.addRule(std::move(R));
  }
  {
    Rule R;
    R.Head = {Path, {v(0), v(2)}};
    R.Body = {{Path, {v(0), v(1)}}, {Edge, {v(1), v(2)}}};
    R.NumVars = 3;
    P.addRule(std::move(R));
  }
  P.run();
  // Full 4x4 closure on the cycle.
  EXPECT_EQ(P.relation(Path).size(), 16u);
}

TEST(EngineTest, ConstantsInAtoms) {
  Program P;
  std::uint32_t In = P.addRelation("in", 2);
  std::uint32_t Out = P.addRelation("out", 1);
  P.addFact(In, {7, 1});
  P.addFact(In, {8, 2});
  P.addFact(In, {9, 1});
  Rule R;
  R.Head = {Out, {v(0)}};
  R.Body = {{In, {v(0), c(1)}}};
  R.NumVars = 1;
  P.addRule(std::move(R));
  P.run();
  EXPECT_EQ(P.relation(Out).size(), 2u);
  EXPECT_TRUE(P.relation(Out).contains({7}));
  EXPECT_TRUE(P.relation(Out).contains({9}));
}

TEST(EngineTest, BuiltinComputesAndFilters) {
  Program P;
  std::uint32_t In = P.addRelation("in", 2);
  std::uint32_t Out = P.addRelation("out", 2);
  P.addFact(In, {1, 2});
  P.addFact(In, {10, 20});
  Rule R;
  R.Head = {Out, {v(0), v(2)}};
  R.Body = {{In, {v(0), v(1)}}};
  BuiltinCall B;
  B.Name = "sum_if_small";
  B.Fn = [](const std::vector<Value> &I) -> std::optional<Value> {
    Value S = I[0] + I[1];
    if (S > 10)
      return std::nullopt; // Filters the (10, 20) row.
    return S;
  };
  B.Inputs = {0, 1};
  B.Output = 2;
  R.Builtins.push_back(std::move(B));
  R.NumVars = 3;
  P.addRule(std::move(R));
  P.run();
  EXPECT_EQ(P.relation(Out).size(), 1u);
  EXPECT_TRUE(P.relation(Out).contains({1, 3}));
}

TEST(EngineTest, MutualRecursion) {
  // even(0). even(Y) :- odd(X), succ(X,Y). odd(Y) :- even(X), succ(X,Y).
  Program P;
  std::uint32_t Succ = P.addRelation("succ", 2);
  std::uint32_t Even = P.addRelation("even", 1);
  std::uint32_t Odd = P.addRelation("odd", 1);
  for (Value I = 0; I < 9; ++I)
    P.addFact(Succ, {I, I + 1});
  P.addFact(Even, {0}); // Pre-seeded derived fact.
  {
    Rule R;
    R.Head = {Odd, {v(1)}};
    R.Body = {{Even, {v(0)}}, {Succ, {v(0), v(1)}}};
    R.NumVars = 2;
    P.addRule(std::move(R));
  }
  {
    Rule R;
    R.Head = {Even, {v(1)}};
    R.Body = {{Odd, {v(0)}}, {Succ, {v(0), v(1)}}};
    R.NumVars = 2;
    P.addRule(std::move(R));
  }
  P.run();
  EXPECT_EQ(P.relation(Even).size(), 5u); // 0 2 4 6 8.
  EXPECT_EQ(P.relation(Odd).size(), 5u);  // 1 3 5 7 9.
  EXPECT_TRUE(P.relation(Even).contains({8}));
  EXPECT_TRUE(P.relation(Odd).contains({9}));
}

TEST(EngineTest, SameRelationTwiceInBody) {
  // sibling-ish join: common(X,Y) :- parent(P,X), parent(P,Y).
  Program P;
  std::uint32_t Par = P.addRelation("parent", 2);
  std::uint32_t Com = P.addRelation("common", 2);
  P.addFact(Par, {1, 10});
  P.addFact(Par, {1, 11});
  P.addFact(Par, {2, 20});
  Rule R;
  R.Head = {Com, {v(1), v(2)}};
  R.Body = {{Par, {v(0), v(1)}}, {Par, {v(0), v(2)}}};
  R.NumVars = 3;
  P.addRule(std::move(R));
  P.run();
  auto Got = pairs(P.relation(Com));
  std::set<std::pair<Value, Value>> Want = {
      {10, 10}, {10, 11}, {11, 10}, {11, 11}, {20, 20}};
  EXPECT_EQ(Got, Want);
}

TEST(EngineTest, DerivationCountGrows) {
  Program P;
  std::uint32_t Edge = P.addRelation("edge", 2);
  std::uint32_t Path = P.addRelation("path", 2);
  P.addFact(Edge, {0, 1});
  P.addFact(Edge, {1, 2});
  Rule R1;
  R1.Head = {Path, {v(0), v(1)}};
  R1.Body = {{Edge, {v(0), v(1)}}};
  R1.NumVars = 2;
  P.addRule(std::move(R1));
  Rule R2;
  R2.Head = {Path, {v(0), v(2)}};
  R2.Body = {{Path, {v(0), v(1)}}, {Edge, {v(1), v(2)}}};
  R2.NumVars = 3;
  P.addRule(std::move(R2));
  P.run();
  EXPECT_GE(P.numDerivations(), P.relation(Path).size());
}

} // namespace
