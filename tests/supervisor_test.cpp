//===- tests/supervisor_test.cpp - Batch supervisor fault tolerance -------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The fleet-robustness contract of tools/ctp-batch: every way a child can
// die lands in the right triage class; the retry policy escalates
// fresh → --resume → --fallback-without-checkpoint exactly as documented;
// and the JSONL journal is a replayable source of truth — re-invoking a
// supervisor over a half-finished work tree re-runs nothing that finished
// and renders those jobs' report rows byte-identically.
//
// Child processes are ctp-crashkid (tests/ctp-crashkid.cpp), a helper
// that misbehaves on demand; one end-to-end case drives the real
// ctp-analyze. Both paths come in via env (CTP_CRASHKID, CTP_ANALYZE),
// set by the ctest harness.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"
#include "support/Durability.h"
#include "support/Subprocess.h"
#include "support/Supervisor.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>

// A TSAN-instrumented child dies differently at the kernel boundary: the
// runtime intercepts SIGSEGV to report it (so the parent sees an exit,
// not a signal), and its fixed shadow mapping aborts under RLIMIT_AS
// before the allocator can print the signature triage keys on. The two
// tests asserting those raw-kernel behaviors skip under TSAN; everything
// else in this file (including the heartbeat stress) runs.
#if defined(__SANITIZE_THREAD__)
#define CTP_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CTP_UNDER_TSAN 1
#endif
#endif
#ifndef CTP_UNDER_TSAN
#define CTP_UNDER_TSAN 0
#endif

using namespace ctp;
using namespace ctp::batch;

namespace {

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "/ctp_supervisor_" + Tag;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string crashkidPath() {
  const char *P = std::getenv("CTP_CRASHKID");
  return P ? P : "";
}

/// Scoped environment variable (crashkid reads its mode from env).
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const std::string &Value) : Name(Name) {
    ::setenv(Name, Value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(Name); }

private:
  const char *Name;
};

SupervisorOptions fastOpts(const std::string &Tag) {
  SupervisorOptions O;
  O.AnalyzePath = crashkidPath();
  O.WorkDir = freshDir(Tag);
  O.PollIntervalMs = 2;
  O.BackoffMs = 1;
  O.BackoffCapMs = 4;
  O.HeartbeatIntervalMs = 10;
  return O;
}

std::vector<std::string> slurpLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  std::string L;
  while (std::getline(In, L))
    Lines.push_back(L);
  return Lines;
}

//===----------------------------------------------------------------------===//
// Triage classification (pure).
//===----------------------------------------------------------------------===//

proc::ExitStatus exited(int Code) {
  proc::ExitStatus S;
  S.Exited = true;
  S.Code = Code;
  return S;
}

proc::ExitStatus signalled(int Sig) {
  proc::ExitStatus S;
  S.Signalled = true;
  S.Signal = Sig;
  return S;
}

TEST(TriageTest, ExitCodesMapToProtocol) {
  KillAttribution None;
  EXPECT_EQ(classifyAttempt(exited(0), None, ""), AttemptClass::ExitOk);
  EXPECT_EQ(classifyAttempt(exited(3), None, ""),
            AttemptClass::ExitDegraded);
  EXPECT_EQ(classifyAttempt(exited(1), None, ""), AttemptClass::ExitError);
  EXPECT_EQ(classifyAttempt(exited(127), None, ""),
            AttemptClass::ExitError);
}

TEST(TriageTest, SupervisorKillsOutrankSignalDecoding) {
  KillAttribution Watchdog;
  Watchdog.Watchdog = true;
  EXPECT_EQ(classifyAttempt(signalled(SIGKILL), Watchdog, ""),
            AttemptClass::WatchdogStall);
  KillAttribution Timeout;
  Timeout.Timeout = true;
  EXPECT_EQ(classifyAttempt(signalled(SIGKILL), Timeout, ""),
            AttemptClass::Timeout);
  KillAttribution Chaos;
  Chaos.Chaos = true;
  EXPECT_EQ(classifyAttempt(signalled(SIGKILL), Chaos, ""),
            AttemptClass::ChaosKill);
}

TEST(TriageTest, RlimitSignatures) {
  KillAttribution None;
  EXPECT_EQ(classifyAttempt(signalled(SIGXCPU), None, ""),
            AttemptClass::RlimitCpu);
  EXPECT_EQ(classifyAttempt(signalled(SIGABRT), None,
                            "terminate called after throwing an instance "
                            "of 'std::bad_alloc'"),
            AttemptClass::RlimitMem);
  // A plain abort without the allocator's signature is an honest crash.
  EXPECT_EQ(classifyAttempt(signalled(SIGABRT), None, "assert failed"),
            AttemptClass::CrashSignal);
  EXPECT_EQ(classifyAttempt(signalled(SIGSEGV), None, ""),
            AttemptClass::CrashSignal);
}

TEST(TriageTest, TerminationSidecarBeatsATruncatedStderrTail) {
  KillAttribution None;
  // A runtime backtrace can push the allocator's message out of the
  // bounded stderr tail; the child's structured sidecar still names the
  // reason, and triage must prefer it.
  EXPECT_EQ(classifyAttempt(signalled(SIGABRT),
                            None, "...pages of backtrace frames...",
                            "reason=bad_alloc"),
            AttemptClass::RlimitMem);
  // A sidecar naming a clean reason must not launder an honest crash
  // into rlimit-mem.
  EXPECT_EQ(classifyAttempt(signalled(SIGABRT), None, "assert failed",
                            "reason=Converged degraded=0"),
            AttemptClass::CrashSignal);
}

TEST(TriageTest, SpawnFailureIsItsOwnClass) {
  KillAttribution None;
  EXPECT_EQ(classifyAttempt(proc::ExitStatus(), None, ""),
            AttemptClass::SpawnFailure);
}

//===----------------------------------------------------------------------===//
// Subprocess primitive.
//===----------------------------------------------------------------------===//

TEST(SubprocessTest, ExitCodeAndSignalDecoding) {
  if (CTP_UNDER_TSAN)
    GTEST_SKIP() << "TSAN intercepts the child's SIGSEGV (see file "
                    "header)";
  ASSERT_FALSE(crashkidPath().empty()) << "CTP_CRASHKID not set";
  {
    proc::SpawnSpec Spec;
    Spec.Argv = {crashkidPath()};
    Spec.ExtraEnv = {"CTP_CRASHKID_MODE=exit", "CTP_CRASHKID_ARG=7"};
    proc::Child C;
    ASSERT_EQ(C.spawn(Spec), "");
    C.wait();
    EXPECT_TRUE(C.status().Exited);
    EXPECT_EQ(C.status().Code, 7);
  }
  {
    proc::SpawnSpec Spec;
    Spec.Argv = {crashkidPath()};
    Spec.ExtraEnv = {"CTP_CRASHKID_MODE=signal", "CTP_CRASHKID_ARG=11"};
    proc::Child C;
    ASSERT_EQ(C.spawn(Spec), "");
    C.wait();
    EXPECT_TRUE(C.status().Signalled);
    EXPECT_EQ(C.status().Signal, SIGSEGV);
  }
}

TEST(SubprocessTest, ExecFailureSurfacesAs127) {
  proc::SpawnSpec Spec;
  Spec.Argv = {"/nonexistent/ctp/binary"};
  proc::Child C;
  ASSERT_EQ(C.spawn(Spec), "");
  C.wait();
  EXPECT_TRUE(C.status().Exited);
  EXPECT_EQ(C.status().Code, 127);
}

TEST(SubprocessTest, StderrTailIsCapturedAndCapped) {
  ASSERT_FALSE(crashkidPath().empty());
  proc::SpawnSpec Spec;
  Spec.Argv = {crashkidPath()};
  // Unknown mode prints a diagnostic mentioning the mode name.
  Spec.ExtraEnv = {"CTP_CRASHKID_MODE=definitely-not-a-mode"};
  Spec.StderrTailBytes = 16;
  proc::Child C;
  ASSERT_EQ(C.spawn(Spec), "");
  C.wait();
  EXPECT_TRUE(C.status().Exited);
  EXPECT_EQ(C.status().Code, 2);
  EXPECT_LE(C.stderrTail().size(), 16u);
  EXPECT_FALSE(C.stderrTail().empty());
}

//===----------------------------------------------------------------------===//
// Watchdog, timeout, and rlimit triage through real children.
//===----------------------------------------------------------------------===//

JobSpec oneJob() { return {"kid", "mode", "native"}; }

TEST(SupervisorTest, WatchdogCatchesSilentChild) {
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "hang");
  SupervisorOptions O = fastOpts("watchdog");
  O.StallTimeoutMs = 250;
  O.MaxRetries = 0;
  std::string Err;
  BatchReport R = Supervisor(O).run({oneJob()}, Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Failed);
  EXPECT_EQ(R.Jobs[0].Triage, "watchdog-stall");
}

TEST(SupervisorTest, WallTimeoutFiresDespiteLiveHeartbeat) {
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "beat");
  ScopedEnv Arg("CTP_CRASHKID_ARG", "60000");
  SupervisorOptions O = fastOpts("timeout");
  O.StallTimeoutMs = 10000; // Generous: the child *is* beating.
  O.JobTimeoutMs = 250;
  O.MaxRetries = 0;
  std::string Err;
  BatchReport R = Supervisor(O).run({oneJob()}, Err);
  ASSERT_EQ(Err, "");
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Failed);
  EXPECT_EQ(R.Jobs[0].Triage, "timeout");
}

TEST(SupervisorTest, CpuRlimitClassifiedAsRlimitCpu) {
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "spin");
  SupervisorOptions O = fastOpts("rlimitcpu");
  O.CpuLimitSeconds = 1;
  O.StallTimeoutMs = 30000;
  O.MaxRetries = 0;
  std::string Err;
  BatchReport R = Supervisor(O).run({oneJob()}, Err);
  ASSERT_EQ(Err, "");
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Failed);
  EXPECT_EQ(R.Jobs[0].Triage, "rlimit-cpu");
}

TEST(SupervisorTest, MemRlimitClassifiedAsRlimitMem) {
  if (CTP_UNDER_TSAN)
    GTEST_SKIP() << "TSAN's shadow mapping aborts under RLIMIT_AS before "
                    "the allocator signature prints (see file header)";
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "alloc");
  SupervisorOptions O = fastOpts("rlimitmem");
  O.MemLimitBytes = 256u << 20;
  O.StallTimeoutMs = 30000;
  O.MaxRetries = 0;
  std::string Err;
  BatchReport R = Supervisor(O).run({oneJob()}, Err);
  ASSERT_EQ(Err, "");
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Failed);
  ASSERT_EQ(R.Jobs[0].Attempts.size(), 1u);
  // The class must be the rlimit, not a generic crash: the supervisor
  // saw SIGABRT plus the allocator's stderr signature.
  EXPECT_EQ(R.Jobs[0].Triage, "rlimit-mem")
      << "stderr tail: " << R.Jobs[0].Attempts[0].StderrTail;
}

//===----------------------------------------------------------------------===//
// Retry policy: resume first, then descend the ladder.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, RetryLadderResumesThenDegrades) {
  ASSERT_FALSE(crashkidPath().empty());
  SupervisorOptions O = fastOpts("ladder");
  std::string ArgvLog = O.WorkDir + "/argv.log";
  ScopedEnv Mode("CTP_CRASHKID_MODE", "failn");
  ScopedEnv Arg("CTP_CRASHKID_ARG", "2");
  ScopedEnv Log("CTP_CRASHKID_ARGVLOG", ArgvLog);
  O.MaxRetries = 3;
  O.CheckpointEvery = 100;
  std::string Err;
  BatchReport R = Supervisor(O).run({oneJob()}, Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Completed);
  ASSERT_EQ(R.Jobs[0].Attempts.size(), 3u);
  EXPECT_EQ(R.Jobs[0].Attempts[0].Class, AttemptClass::ExitError);
  EXPECT_EQ(R.Jobs[0].Attempts[1].Class, AttemptClass::ExitError);
  EXPECT_EQ(R.Jobs[0].Attempts[2].Class, AttemptClass::ExitOk);
  EXPECT_FALSE(R.Jobs[0].Attempts[0].Resumed);
  EXPECT_TRUE(R.Jobs[0].Attempts[1].Resumed);
  EXPECT_TRUE(R.Jobs[0].Attempts[2].Fallback);

  // The child-visible command lines must escalate exactly as documented.
  std::vector<std::string> Lines = slurpLines(ArgvLog);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_NE(Lines[0].find("--checkpoint-dir"), std::string::npos);
  EXPECT_EQ(Lines[0].find("--resume"), std::string::npos);
  EXPECT_EQ(Lines[0].find("--fallback"), std::string::npos);
  EXPECT_NE(Lines[1].find("--checkpoint-dir"), std::string::npos);
  EXPECT_NE(Lines[1].find("--resume"), std::string::npos);
  // Ladder descent trades the checkpoint for an answer: --fallback plus
  // --checkpoint-dir would never descend (solveWithFallback prefers
  // snapshotting rung 0 over degrading).
  EXPECT_NE(Lines[2].find("--fallback"), std::string::npos);
  EXPECT_EQ(Lines[2].find("--checkpoint-dir"), std::string::npos);
  EXPECT_EQ(Lines[2].find("--resume"), std::string::npos);
}

TEST(SupervisorTest, RetriesExhaustedIsFailedWithDecisiveTriage) {
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "signal");
  ScopedEnv Arg("CTP_CRASHKID_ARG", "6"); // SIGABRT, no bad_alloc text.
  SupervisorOptions O = fastOpts("exhaust");
  O.MaxRetries = 1;
  std::string Err;
  BatchReport R = Supervisor(O).run({oneJob()}, Err);
  ASSERT_EQ(Err, "");
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Failed);
  EXPECT_EQ(R.Jobs[0].Triage, "crash-signal");
  EXPECT_EQ(R.Jobs[0].Attempts.size(), 2u); // initial + 1 retry
}

TEST(SupervisorTest, DegradedExitBecomesCompletedDegraded) {
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "exit");
  ScopedEnv Arg("CTP_CRASHKID_ARG", "3");
  SupervisorOptions O = fastOpts("degraded");
  O.MaxRetries = 1;
  std::string Err;
  BatchReport R = Supervisor(O).run({oneJob()}, Err);
  ASSERT_EQ(Err, "");
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::CompletedDegraded);
  EXPECT_EQ(R.Jobs[0].Triage, "exit-degraded");
  EXPECT_EQ(R.NumDegraded, 1u);
}

//===----------------------------------------------------------------------===//
// Journal: durability, replay, idempotence.
//===----------------------------------------------------------------------===//

TEST(JournalTest, ReplaySkipsFinishedJobsAndRowsAreByteIdentical) {
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "beat");
  ScopedEnv Arg("CTP_CRASHKID_ARG", "20");
  SupervisorOptions O = fastOpts("replay");
  std::vector<JobSpec> Batch = {{"a", "cfg", "native"},
                                {"b", "cfg", "native"}};
  std::string Err;
  BatchReport First = Supervisor(O).run(Batch, Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(First.Jobs.size(), 2u);
  EXPECT_FALSE(First.Jobs[0].FromJournal);

  // A second supervisor life over the same work tree replays everything.
  BatchReport Second = Supervisor(O).run(Batch, Err);
  ASSERT_EQ(Err, "");
  EXPECT_TRUE(Second.Jobs[0].FromJournal);
  EXPECT_TRUE(Second.Jobs[1].FromJournal);
  EXPECT_EQ(First.renderTable(), Second.renderTable());
  EXPECT_EQ(First.renderJson(), Second.renderJson());

  // A third life extends the matrix: finished rows keep their bytes.
  std::vector<JobSpec> Bigger = Batch;
  Bigger.push_back({"c", "cfg", "native"});
  BatchReport Third = Supervisor(O).run(Bigger, Err);
  ASSERT_EQ(Err, "");
  // Row-level comparison: the first two lines after the header match.
  auto Rows = [](const std::string &Table) {
    std::vector<std::string> Out;
    std::istringstream In(Table);
    std::string L;
    while (std::getline(In, L))
      Out.push_back(L);
    return Out;
  };
  std::vector<std::string> R1 = Rows(First.renderTable());
  std::vector<std::string> R3 = Rows(Third.renderTable());
  ASSERT_GE(R1.size(), 3u);
  ASSERT_GE(R3.size(), 4u);
  EXPECT_EQ(R1[1], R3[1]);
  EXPECT_EQ(R1[2], R3[2]);
}

TEST(JournalTest, TornTailLinesAreCountedNotFatal) {
  std::string Dir = freshDir("torn");
  std::string Path = journalPath(Dir);
  ASSERT_EQ(durable::appendLine(
                Path, "{\"type\":\"attempt\",\"job\":\"a/b/c\","
                      "\"attempt\":0,\"class\":\"exit-ok\",\"exit\":0,"
                      "\"signal\":0,\"resumed\":false,\"fallback\":false,"
                      "\"elapsed_ms\":5,\"stderr\":\"\"}"),
            "");
  ASSERT_EQ(durable::appendLine(
                Path, "{\"type\":\"outcome\",\"job\":\"a/b/c\","
                      "\"status\":\"completed\",\"attempts\":1,"
                      "\"triage\":\"exit-ok\",\"total_ms\":5}"),
            "");
  // The torn tail of a supervisor killed mid-append.
  std::ofstream(Path, std::ios::app)
      << "{\"type\":\"outcome\",\"job\":\"d/e/f\",\"stat";
  std::map<std::string, JobOutcome> Finished;
  std::size_t Torn = 0;
  ASSERT_TRUE(replayJournal(Path, Finished, &Torn));
  EXPECT_EQ(Torn, 1u);
  ASSERT_EQ(Finished.size(), 1u);
  const JobOutcome &O = Finished.at("a/b/c");
  EXPECT_EQ(O.Status, JobStatus::Completed);
  EXPECT_EQ(O.Spec.Preset, "a");
  EXPECT_EQ(O.Spec.Config, "b");
  EXPECT_EQ(O.Spec.Backend, "c");
  EXPECT_TRUE(O.FromJournal);
  ASSERT_EQ(O.Attempts.size(), 1u);
  EXPECT_EQ(O.Attempts[0].Class, AttemptClass::ExitOk);
}

TEST(JournalTest, StderrTailRoundTripsThroughEscaping) {
  // The emitter is not exported, so write the exact line shapes the
  // supervisor produces and check the replay side unescapes them.
  std::string Dir = freshDir("escape");
  std::string Path = journalPath(Dir);
  ASSERT_EQ(
      durable::appendLine(
          Path,
          "{\"type\":\"attempt\",\"job\":\"p/c\\twith\\ttabs/native\","
          "\"attempt\":0,\"class\":\"crash-signal\",\"exit\":-1,"
          "\"signal\":11,\"resumed\":false,\"fallback\":false,"
          "\"elapsed_ms\":1,"
          "\"stderr\":\"line1\\nline2\\t\\\"quoted\\\"\\\\back\\u0001\"}"),
      "");
  ASSERT_EQ(durable::appendLine(
                Path, "{\"type\":\"outcome\",\"job\":"
                      "\"p/c\\twith\\ttabs/native\",\"status\":\"failed\","
                      "\"attempts\":1,\"triage\":\"crash-signal\","
                      "\"total_ms\":1}"),
            "");
  std::map<std::string, JobOutcome> Finished;
  ASSERT_TRUE(replayJournal(Path, Finished, nullptr));
  ASSERT_EQ(Finished.size(), 1u);
  const JobOutcome &Got = Finished.begin()->second;
  EXPECT_EQ(Got.Spec.Config, "c\twith\ttabs");
  ASSERT_EQ(Got.Attempts.size(), 1u);
  EXPECT_EQ(Got.Attempts[0].StderrTail,
            "line1\nline2\t\"quoted\"\\back\x01");
}

//===----------------------------------------------------------------------===//
// Chaos: seeded kills stay bounded; the journal stays consistent.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, ChaosKillsAreBoundedAndRecoverable) {
  ASSERT_FALSE(crashkidPath().empty());
  ScopedEnv Mode("CTP_CRASHKID_MODE", "beat");
  ScopedEnv Arg("CTP_CRASHKID_ARG", "300");
  SupervisorOptions O = fastOpts("chaos");
  O.Chaos = true;
  O.Seed = 42;
  O.ChaosKills = 2;
  O.ChaosMinMs = 20;
  O.ChaosMaxMs = 120;
  O.StallTimeoutMs = 10000;
  std::string Err;
  std::vector<JobSpec> Batch = {{"a", "cfg", "native"},
                                {"b", "cfg", "native"}};
  BatchReport R = Supervisor(O).run(Batch, Err);
  ASSERT_EQ(Err, "");
  std::size_t ChaosSeen = 0;
  for (const JobOutcome &J : R.Jobs) {
    EXPECT_EQ(J.Status, JobStatus::Completed);
    for (const AttemptRecord &A : J.Attempts)
      ChaosSeen += A.Class == AttemptClass::ChaosKill;
  }
  EXPECT_LE(ChaosSeen, 2u);
  // The journal agrees with the in-memory report.
  std::map<std::string, JobOutcome> Finished;
  ASSERT_TRUE(replayJournal(journalPath(O.WorkDir), Finished, nullptr));
  ASSERT_EQ(Finished.size(), 2u);
  for (const JobOutcome &J : R.Jobs)
    EXPECT_EQ(Finished.at(J.Spec.id()).Status, J.Status);
}

//===----------------------------------------------------------------------===//
// Matrix expansion and plan files.
//===----------------------------------------------------------------------===//

TEST(PlanTest, ExpandMatrixIsPresetsMajor) {
  std::vector<JobSpec> Jobs =
      expandMatrix({"p1", "p2"}, {"c1", "c2"}, {"native"});
  ASSERT_EQ(Jobs.size(), 4u);
  EXPECT_EQ(Jobs[0].id(), "p1/c1/native");
  EXPECT_EQ(Jobs[1].id(), "p1/c2/native");
  EXPECT_EQ(Jobs[2].id(), "p2/c1/native");
  EXPECT_EQ(Jobs[3].id(), "p2/c2/native");
}

TEST(PlanTest, LoadPlanParsesAndDiagnoses) {
  std::string Dir = freshDir("plan");
  std::string Path = Dir + "/plan.tsv";
  {
    std::ofstream Out(Path);
    Out << "# a comment line\n"
        << "antlr\t2-object+H\n"
        << "pmd\tinsensitive\tdatalog\n";
  }
  std::vector<JobSpec> Jobs;
  ASSERT_EQ(loadPlan(Path, Jobs), "");
  ASSERT_EQ(Jobs.size(), 2u);
  EXPECT_EQ(Jobs[0].id(), "antlr/2-object+H/native");
  EXPECT_EQ(Jobs[1].id(), "pmd/insensitive/datalog");

  {
    std::ofstream Out(Path);
    Out << "antlr\t2-object+H\tsouffle\n";
  }
  Jobs.clear();
  std::string Err = loadPlan(Path, Jobs);
  EXPECT_NE(Err.find(":1:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("souffle"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Heartbeat plumbing and durable appends (satellite units).
//===----------------------------------------------------------------------===//

TEST(HeartbeatTest, BudgetPollsBeatTheFile) {
  std::string Dir = freshDir("heartbeat");
  std::string Path = Dir + "/beat";
  heartbeat::install(Path, /*MinIntervalMs=*/0);
  ASSERT_TRUE(heartbeat::installed());
  std::uint64_t Before = heartbeat::beats();
  BudgetMeter Meter{BudgetSpec()}; // Unlimited: poll still beats.
  // The rate limiter needs wall time to elapse between beats, so poll
  // across real milliseconds rather than in one tight burst.
  for (int Round = 0; Round < 200 && heartbeat::beats() == Before;
       ++Round) {
    for (int I = 0; I < 256; ++I)
      (void)Meter.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(heartbeat::beats(), Before);
  std::string Content = slurpLines(Path).at(0);
  EXPECT_FALSE(Content.empty());
  heartbeat::disable();
  std::uint64_t Frozen = heartbeat::beats();
  for (int I = 0; I < 1000; ++I)
    (void)Meter.poll();
  EXPECT_EQ(heartbeat::beats(), Frozen);
}

TEST(HeartbeatTest, InstallFromEnvHonoursVariables) {
  std::string Dir = freshDir("heartbeat_env");
  heartbeat::disable();
  EXPECT_FALSE(heartbeat::installFromEnv()); // No env: stays inert.
  ScopedEnv File("CTP_HEARTBEAT_FILE", Dir + "/b");
  ScopedEnv Interval("CTP_HEARTBEAT_INTERVAL_MS", "0");
  EXPECT_TRUE(heartbeat::installFromEnv());
  EXPECT_TRUE(heartbeat::installed());
  // install() writes one beat immediately.
  EXPECT_FALSE(slurpLines(Dir + "/b").empty());
  heartbeat::disable();
}

TEST(HeartbeatTest, TickBeatsWithoutThePollStride) {
  // onPoll amortizes its clock read over 64 calls — fine at rule-firing
  // rates, far too sparse for a service loop that wakes ~20x per
  // second. tick() must beat on elapsed time alone.
  std::string Dir = freshDir("heartbeat_tick");
  std::string Path = Dir + "/beat";
  heartbeat::install(Path, /*MinIntervalMs=*/1);
  std::uint64_t Before = heartbeat::beats();
  for (int Round = 0; Round < 200 && heartbeat::beats() == Before;
       ++Round) {
    heartbeat::tick(); // ONE call per wakeup, unlike the 64-stride.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(heartbeat::beats(), Before);
  heartbeat::disable();
  std::uint64_t Frozen = heartbeat::beats();
  heartbeat::tick();
  EXPECT_EQ(heartbeat::beats(), Frozen); // Inert when uninstalled.
}

TEST(HeartbeatTest, ConcurrentWritersNeverTearTheFile) {
  // The CAS elects one writer per interval, but winners of *adjacent*
  // intervals can overlap in writeBeatFile; the write mutex must keep
  // the truncate-and-rewrite atomic. Run writer threads flat out at the
  // smallest interval while a reader continuously validates the file:
  // every observation must be either empty (mid-truncate is legal — the
  // watcher only compares successive contents) or exactly one decimal
  // counter line. Run under TSAN (check.sh --tsan) this also proves the
  // heartbeat path data-race-free.
  std::string Dir = freshDir("heartbeat_torn");
  std::string Path = Dir + "/beat";
  heartbeat::install(Path, /*MinIntervalMs=*/1);

  std::atomic<bool> StopFlag{false};
  std::atomic<int> Violations{0};
  std::vector<std::thread> Writers;
  for (int T = 0; T < 4; ++T)
    Writers.emplace_back([&StopFlag] {
      while (!StopFlag.load(std::memory_order_relaxed)) {
        heartbeat::tick();
        for (int I = 0; I < 64; ++I)
          heartbeat::onPoll();
      }
    });
  std::thread Reader([&] {
    while (!StopFlag.load(std::memory_order_relaxed)) {
      std::ifstream In(Path, std::ios::binary);
      if (!In.is_open())
        continue;
      std::string S((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
      if (S.empty())
        continue; // Between truncate and write: allowed.
      bool Ok = S.back() == '\n' &&
                S.find('\n') == S.size() - 1 && S.size() >= 2;
      for (std::size_t I = 0; Ok && I + 1 < S.size(); ++I)
        Ok = S[I] >= '0' && S[I] <= '9';
      if (!Ok)
        Violations.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  StopFlag.store(true, std::memory_order_relaxed);
  for (std::thread &W : Writers)
    W.join();
  Reader.join();
  heartbeat::disable();
  EXPECT_EQ(Violations.load(), 0)
      << "torn heartbeat file observed under concurrent writers";
  EXPECT_GT(heartbeat::beats(), 0u);
}

TEST(DurabilityTest, AppendLineCreatesAndAppends) {
  std::string Dir = freshDir("durable");
  std::string Path = Dir + "/log.jsonl";
  EXPECT_EQ(durable::appendLine(Path, "one"), "");
  EXPECT_EQ(durable::appendLine(Path, "two"), "");
  std::vector<std::string> Lines = slurpLines(Path);
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[0], "one");
  EXPECT_EQ(Lines[1], "two");
  EXPECT_NE(durable::appendLine(Dir + "/no/such/dir/x", "y"), "");
}

TEST(DurabilityTest, WriteFileSyncedAndDirSync) {
  std::string Dir = freshDir("synced");
  std::string Path = Dir + "/data.bin";
  const char Bytes[] = "payload";
  EXPECT_EQ(durable::writeFileSynced(Path, Bytes, 7), "");
  std::ifstream In(Path, std::ios::binary);
  std::string Got((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(Got, "payload");
  EXPECT_EQ(durable::syncDirOf(Path), "");
  EXPECT_NE(durable::syncDirOf("/no/such/dir/file"), "");
}

//===----------------------------------------------------------------------===//
// End to end against the real ctp-analyze.
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, RealAnalyzeCompletesAndDegradesHonestly) {
  const char *Analyze = std::getenv("CTP_ANALYZE");
  ASSERT_NE(Analyze, nullptr) << "CTP_ANALYZE not set";
  SupervisorOptions O = fastOpts("real");
  O.AnalyzePath = Analyze;
  O.CheckpointEvery = 500;
  std::string Err;
  BatchReport R =
      Supervisor(O).run({{"antlr", "insensitive", "native"}}, Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(R.Jobs.size(), 1u);
  EXPECT_EQ(R.Jobs[0].Status, JobStatus::Completed)
      << "triage: " << R.Jobs[0].Triage << " stderr: "
      << (R.Jobs[0].Attempts.empty()
              ? std::string("<none>")
              : R.Jobs[0].Attempts.back().StderrTail);

  // A starved budget without retries left ends completed-degraded via
  // the exit-3 protocol (first attempt saves a snapshot and exits 3;
  // the escalation ladder then answers from a lower rung or keeps
  // exiting 3 until retries run out — either way an answer, not a fail).
  SupervisorOptions O2 = fastOpts("real_degraded");
  O2.AnalyzePath = Analyze;
  O2.MaxDerivations = 10;
  O2.MaxRetries = 1;
  BatchReport R2 =
      Supervisor(O2).run({{"antlr", "2-object+H", "native"}}, Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(R2.Jobs.size(), 1u);
  EXPECT_EQ(R2.Jobs[0].Status, JobStatus::CompletedDegraded)
      << "triage: " << R2.Jobs[0].Triage;
}

} // namespace
