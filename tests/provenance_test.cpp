//===- tests/provenance_test.cpp - Derivation-provenance recorder ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The first-derivation recorder's contract: when enabled on a converged
// native run, every derived tuple has exactly one recorded node whose
// premises structurally match its rule; recording is off by default and
// costs nothing; the MaxEdges cap degrades chains to prefixes instead of
// garbage; and a resumed run drops the graph cleanly.
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkpoint.h"
#include "analysis/Provenance.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "ir/Builder.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <set>
#include <string>
#include <vector>

using namespace ctp;
using namespace ctp::ir;
using analysis::ProvenanceGraph;
using analysis::ProvRel;
using analysis::ProvRule;
using ctx::Abstraction;

namespace {

/// A small program exercising every Figure 3 rule: allocation, assign,
/// cast, field store/load (heap-indirect flow), static call with
/// param/return, virtual dispatch with this-binding, global store/load,
/// and throw/catch.
ir::Program makeRichProgram() {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Sub = B.addClass("Sub", Obj);
  FieldId Fld = B.addField("f");
  GlobalId G = B.addGlobal("gvar");

  // Virtual target: Sub.id(p) { return p; }
  SigId IdSig = B.signature("id", 1);
  MethodId IdM = B.addMethod(Sub, "id", 1);

  B.addReturn(IdM, B.formal(IdM, 0));

  // Static helper: thrower() { t = new Sub; throw t; }
  MethodId Thrower = B.addStaticMethod(Obj, "thrower", 0);
  VarId T = B.addLocal(Thrower, "t");
  B.addNew(Thrower, T, Sub, "hthrown");
  B.addThrow(Thrower, T);

  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  B.addNew(Main, X, Sub, "hx");
  VarId Y = B.addLocal(Main, "y");
  B.addAssign(Main, Y, X);
  VarId C = B.addLocal(Main, "c");
  B.addCast(Main, C, Sub, Y);

  VarId Box = B.addLocal(Main, "box");
  B.addNew(Main, Box, Obj, "hbox");
  B.addStore(Main, Box, Fld, X);
  VarId L = B.addLocal(Main, "l");
  B.addLoad(Main, L, Box, Fld);

  B.addGlobalStore(Main, G, X);
  VarId GL = B.addLocal(Main, "gl");
  B.addGlobalLoad(Main, GL, G);

  VarId R = B.addLocal(Main, "r");
  B.addVirtualCall(Main, X, IdSig, {Y}, R, "callid");

  VarId Caught = B.addLocal(Main, "caught");
  InvokeId ThrowInv = B.addStaticCall(Main, Thrower, {}, InvalidId, "callthrow");
  B.setCatchVar(ThrowInv, Caught);
  return B.take();
}

analysis::Results solveWithProv(const facts::FactDB &DB,
                                const ctx::Config &Cfg,
                                std::size_t MaxEdges = 4u << 20) {
  analysis::SolverOptions SO;
  SO.Provenance.Enabled = true;
  SO.Provenance.MaxEdges = MaxEdges;
  return analysis::solve(DB, Cfg, SO);
}

/// The derived-relation kinds a rule's premises must come from (InvalidNode
/// premises are allowed everywhere: the premise may predate recording only
/// on truncated graphs, but input-only premises are always absent).
struct PremShape {
  bool HasPrem0, HasPrem1;
  ProvRel Rel0, Rel1;
};

PremShape shapeOf(ProvRule R) {
  switch (R) {
  case ProvRule::Entry:
    return {false, false, ProvRel::Pts, ProvRel::Pts};
  case ProvRule::Assign:
  case ProvRule::Cast:
  case ProvRule::Load:
  case ProvRule::GStore:
    return {true, false, ProvRel::Pts, ProvRel::Pts};
  case ProvRule::Store:
    return {true, true, ProvRel::Pts, ProvRel::Pts};
  case ProvRule::Param:
  case ProvRule::Ret:
  case ProvRule::Throw:
  case ProvRule::Shortcut:
    return {true, true, ProvRel::Pts, ProvRel::Call};
  case ProvRule::VirtCall:
    return {true, false, ProvRel::Pts, ProvRel::Pts};
  case ProvRule::VirtThis:
    return {true, true, ProvRel::Pts, ProvRel::Call};
  case ProvRule::Ind:
    return {true, true, ProvRel::Hpts, ProvRel::Hload};
  case ProvRule::Reach:
    return {true, false, ProvRel::Call, ProvRel::Call};
  case ProvRule::GLoad:
    return {true, true, ProvRel::Gpts, ProvRel::Reach};
  case ProvRule::New:
  case ProvRule::Static:
    return {true, false, ProvRel::Reach, ProvRel::Reach};
  }
  return {false, false, ProvRel::Pts, ProvRel::Pts};
}

/// Checks that every tuple of every derived relation has a node, and that
/// every node's edge is structurally consistent with its rule.
void expectCompleteAndConsistent(const analysis::Results &R) {
  ASSERT_NE(R.Prov, nullptr);
  const ProvenanceGraph &G = *R.Prov;
  EXPECT_FALSE(G.truncated());

  std::size_t Tuples = R.Pts.size() + R.Hpts.size() + R.Hload.size() +
                       R.Call.size() + R.Reach.size() + R.Gpts.size();
  EXPECT_EQ(G.size(), Tuples);

  auto CheckAll = [&](ProvRel Rel, auto const &Vec) {
    for (const auto &F : Vec) {
      std::uint32_t N = G.lookup(Rel, analysis::keyOf(F));
      ASSERT_NE(N, ProvenanceGraph::InvalidNode);
      EXPECT_EQ(G.relOf(N), Rel);
      EXPECT_EQ(G.factOf(N), analysis::keyOf(F));
    }
  };
  CheckAll(ProvRel::Pts, R.Pts);
  CheckAll(ProvRel::Hpts, R.Hpts);
  CheckAll(ProvRel::Hload, R.Hload);
  CheckAll(ProvRel::Call, R.Call);
  CheckAll(ProvRel::Reach, R.Reach);
  CheckAll(ProvRel::Gpts, R.Gpts);

  for (std::uint32_t N = 0; N < G.size(); ++N) {
    const ProvenanceGraph::Edge &E = G.edgeOf(N);
    PremShape S = shapeOf(E.Rule);
    if (!S.HasPrem0) {
      EXPECT_EQ(E.Prem0, ProvenanceGraph::InvalidNode);
    }
    if (!S.HasPrem1) {
      EXPECT_EQ(E.Prem1, ProvenanceGraph::InvalidNode);
    }
    // A premise always predates its conclusion (the graph is acyclic by
    // construction) and lives in the relation its rule dictates.
    if (E.Prem0 != ProvenanceGraph::InvalidNode) {
      EXPECT_LT(E.Prem0, N);
      EXPECT_EQ(G.relOf(E.Prem0), S.Rel0) << "rule " << int(E.Rule);
    }
    if (E.Prem1 != ProvenanceGraph::InvalidNode) {
      EXPECT_LT(E.Prem1, N);
      EXPECT_EQ(G.relOf(E.Prem1), S.Rel1) << "rule " << int(E.Rule);
    }
  }
}

TEST(ProvenanceTest, EveryTupleRecordedOnRichProgram) {
  facts::FactDB DB = facts::extract(makeRichProgram());
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    for (const ctx::Config &Cfg :
         {ctx::insensitive(A), ctx::oneCallH(A), ctx::twoObjectH(A)}) {
      analysis::Results R = solveWithProv(DB, Cfg);
      SCOPED_TRACE(Cfg.name());
      expectCompleteAndConsistent(R);
    }
  }
}

TEST(ProvenanceTest, EveryTupleRecordedOnPreset) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::Results R =
      solveWithProv(DB, ctx::twoObjectH(Abstraction::TransformerString));
  expectCompleteAndConsistent(R);
}

TEST(ProvenanceTest, ChainsEndAtAxioms) {
  facts::FactDB DB = facts::extract(makeRichProgram());
  analysis::Results R =
      solveWithProv(DB, ctx::twoObjectH(Abstraction::TransformerString));
  ASSERT_NE(R.Prov, nullptr);
  const ProvenanceGraph &G = *R.Prov;
  // Walking any pts fact far enough always reaches an allocation (every
  // heap in a points-to set was allocated somewhere) and the entry axiom
  // (everything is ultimately derived from reach(main)).
  for (const analysis::PtsFact &F : R.Pts) {
    std::uint32_t N = G.lookup(ProvRel::Pts, analysis::keyOf(F));
    std::vector<std::uint32_t> Chain = G.chain(N, 10000);
    ASSERT_FALSE(Chain.empty());
    EXPECT_EQ(Chain.front(), N);
    bool SawNew = false, SawEntry = false;
    for (std::uint32_t C : Chain) {
      SawNew |= G.edgeOf(C).Rule == ProvRule::New;
      SawEntry |= G.edgeOf(C).Rule == ProvRule::Entry;
    }
    EXPECT_TRUE(SawNew);
    EXPECT_TRUE(SawEntry);
  }
}

TEST(ProvenanceTest, DisabledRunHasNullGraphAndIdenticalResults) {
  facts::FactDB DB = facts::extract(makeRichProgram());
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results Off = analysis::solve(DB, Cfg);
  EXPECT_EQ(Off.Prov, nullptr);
  EXPECT_TRUE(Off.Stat.ProvenanceDropped.empty());

  analysis::Results On = solveWithProv(DB, Cfg);
  EXPECT_TRUE(On.Stat.ProvenanceDropped.empty());
  // Recording never perturbs the fixpoint or the evaluation order.
  EXPECT_EQ(Off.Pts.size(), On.Pts.size());
  EXPECT_EQ(Off.Stat.Progress.Derivations, On.Stat.Progress.Derivations);
  EXPECT_EQ(Off.Stat.WorkItems, On.Stat.WorkItems);
}

TEST(ProvenanceTest, TruncationDegradesToPrefix) {
  facts::FactDB DB = facts::extract(makeRichProgram());
  analysis::Results R = solveWithProv(
      DB, ctx::twoObjectH(Abstraction::TransformerString), /*MaxEdges=*/16);
  ASSERT_NE(R.Prov, nullptr);
  const ProvenanceGraph &G = *R.Prov;
  EXPECT_TRUE(G.truncated());
  EXPECT_EQ(G.size(), 16u);
  // Recorded chains stay walkable; unrecorded facts report InvalidNode.
  std::size_t Missing = 0;
  for (const analysis::PtsFact &F : R.Pts) {
    std::uint32_t N = G.lookup(ProvRel::Pts, analysis::keyOf(F));
    if (N == ProvenanceGraph::InvalidNode) {
      ++Missing;
      EXPECT_TRUE(G.chain(N, 100).empty());
      continue;
    }
    std::vector<std::uint32_t> Chain = G.chain(N, 100);
    ASSERT_FALSE(Chain.empty());
    for (std::uint32_t C : Chain)
      EXPECT_LT(C, G.size());
  }
  EXPECT_GT(Missing, 0u);
}

TEST(ProvenanceTest, ChainRespectsNodeBound) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::Results R =
      solveWithProv(DB, ctx::twoObjectH(Abstraction::TransformerString));
  ASSERT_NE(R.Prov, nullptr);
  for (const analysis::PtsFact &F : R.Pts) {
    std::vector<std::uint32_t> Chain =
        R.Prov->chain(R.Prov->lookup(ProvRel::Pts, analysis::keyOf(F)), 5);
    EXPECT_LE(Chain.size(), 5u);
  }
}

TEST(ProvenanceTest, RenderedChainNamesEntities) {
  facts::FactDB DB = facts::extract(makeRichProgram());
  analysis::Results R =
      solveWithProv(DB, ctx::twoObjectH(Abstraction::TransformerString));
  ASSERT_NE(R.Prov, nullptr);

  // Object.main/l points to hx only through the store/load pair.
  std::uint32_t LVar = facts::InvalidId, HX = facts::InvalidId;
  for (std::uint32_t V = 0; V < DB.numVars(); ++V)
    if (DB.VarNames[V] == "Object.main/l")
      LVar = V;
  for (std::uint32_t H = 0; H < DB.numHeaps(); ++H)
    if (DB.HeapNames[H] == "hx")
      HX = H;
  ASSERT_NE(LVar, facts::InvalidId);
  ASSERT_NE(HX, facts::InvalidId);

  std::uint32_t Node = ProvenanceGraph::InvalidNode;
  for (const analysis::PtsFact &F : R.Pts)
    if (F.Var == LVar && F.Heap == HX)
      Node = R.Prov->lookup(ProvRel::Pts, analysis::keyOf(F));
  ASSERT_NE(Node, ProvenanceGraph::InvalidNode);

  std::string Text = analysis::renderProvenanceChain(
      *R.Prov, Node, DB, *R.Dom, *R.ReachCtxts);
  EXPECT_NE(Text.find("pts(Object.main/l, hx)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("indirect-flow"), std::string::npos) << Text;
  EXPECT_NE(Text.find("allocation"), std::string::npos) << Text;
  EXPECT_NE(Text.find("<="), std::string::npos) << Text;
}

TEST(ProvenanceTest, ResumedRunDropsProvenanceCleanly) {
  std::string Dir = ::testing::TempDir() + "/ctp_prov_resume";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);

  analysis::SolverOptions Interrupted;
  Interrupted.Provenance.Enabled = true;
  Interrupted.Budget.MaxDerivations = 1000;
  Interrupted.Checkpoint.Dir = Dir;
  analysis::Results First = analysis::solve(DB, Cfg, Interrupted);
  ASSERT_NE(First.Stat.Term, TerminationReason::Converged);
  // The interrupted run itself recorded normally.
  EXPECT_NE(First.Prov, nullptr);

  analysis::SolverSnapshot Snap;
  ASSERT_TRUE(
      analysis::readSnapshot(analysis::checkpointPath(Dir), Snap).empty());

  analysis::SolverOptions Resumed;
  Resumed.Provenance.Enabled = true;
  Resumed.Resume = &Snap;
  analysis::Results Second = analysis::solve(DB, Cfg, Resumed);
  EXPECT_EQ(Second.Stat.Term, TerminationReason::Converged);
  EXPECT_TRUE(Second.Stat.CheckpointError.empty());
  // Dropped entirely — never a half-graph — with the reason reported.
  EXPECT_EQ(Second.Prov, nullptr);
  EXPECT_NE(Second.Stat.ProvenanceDropped.find("resumed"), std::string::npos)
      << Second.Stat.ProvenanceDropped;
  std::filesystem::remove_all(Dir);
}

} // namespace
