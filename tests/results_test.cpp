//===- tests/results_test.cpp - Results, projections, determinism ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "ctx/Domain.h"
#include "facts/Extract.h"
#include "workload/Generator.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <set>

using namespace ctp;
using ctx::Abstraction;

namespace {

TEST(ResultsTest, ProjectionsAreSortedAndUnique) {
  facts::FactDB DB = facts::extract(workload::figure1().P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  auto Pts = R.ciPts();
  for (std::size_t I = 1; I < Pts.size(); ++I)
    EXPECT_LT(Pts[I - 1], Pts[I]);
  auto Calls = R.ciCall();
  for (std::size_t I = 1; I < Calls.size(); ++I)
    EXPECT_LT(Calls[I - 1], Calls[I]);
  auto Reach = R.ciReach();
  for (std::size_t I = 1; I < Reach.size(); ++I)
    EXPECT_LT(Reach[I - 1], Reach[I]);
}

TEST(ResultsTest, SolverIsDeterministic) {
  workload::WorkloadParams P;
  P.Drivers = 3;
  P.Scenarios = 5;
  P.Seed = 77;
  facts::FactDB DB = facts::extract(workload::generate(P));
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R1 = analysis::solve(DB, ctx::twoObjectH(A));
    analysis::Results R2 = analysis::solve(DB, ctx::twoObjectH(A));
    EXPECT_EQ(R1.Stat.NumPts, R2.Stat.NumPts);
    EXPECT_EQ(R1.Stat.NumCall, R2.Stat.NumCall);
    EXPECT_EQ(R1.Stat.WorkItems, R2.Stat.WorkItems);
    // Fact sets identical, including the interned transform ids (the
    // evaluation order is deterministic, so interning order is too).
    std::set<std::array<std::uint32_t, 4>> S1, S2;
    for (const auto &F : R1.Pts)
      S1.insert(analysis::keyOf(F));
    for (const auto &F : R2.Pts)
      S2.insert(analysis::keyOf(F));
    EXPECT_EQ(S1, S2);
  }
}

TEST(ResultsTest, DomainToStringRendersBothAbstractions) {
  facts::FactDB DB = facts::extract(workload::figure5().P);
  analysis::Results Ts =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  bool SawEpsilon = false;
  for (const auto &F : Ts.Pts)
    SawEpsilon |= Ts.Dom->toString(F.T).find("eps") != std::string::npos;
  EXPECT_TRUE(SawEpsilon);

  analysis::Results Cs =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  ASSERT_FALSE(Cs.Pts.empty());
  EXPECT_NE(Cs.Dom->toString(Cs.Pts[0].T).find("->"), std::string::npos);
}

TEST(ResultsTest, PointsToOfUnknownVarIsEmpty) {
  facts::FactDB DB = facts::extract(workload::figure7().P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCall(Abstraction::ContextString));
  EXPECT_TRUE(R.pointsTo(123456).empty());
}

TEST(DomainTest, RetargetAndGlobalizeContextString) {
  auto D = ctx::makeDomain(ctx::oneCallH(Abstraction::ContextString),
                           {0});
  ctx::CtxtVec M;
  M.push_back(ctx::elemOfEntity(5));
  ctx::TransformId B = D->record(M); // ([e5], [e5]) at h = 1.
  ctx::TransformId G = D->globalize(B);
  EXPECT_EQ(D->ctxtPair(G).In, M);
  EXPECT_TRUE(D->ctxtPair(G).Out.empty());
  ctx::CtxtVec M2;
  M2.push_back(ctx::elemOfEntity(9));
  ctx::TransformId RT = D->retarget(G, M2);
  EXPECT_EQ(D->ctxtPair(RT).In, M);
  EXPECT_EQ(D->ctxtPair(RT).Out, M2);
}

TEST(DomainTest, RetargetAndGlobalizeTransformer) {
  auto D = ctx::makeDomain(ctx::oneCallH(Abstraction::TransformerString),
                           {0});
  ctx::CtxtVec M;
  M.push_back(ctx::elemOfEntity(5));
  // Build a transform with entries via merge_s, then invert it so the
  // exits side is populated: Ǐ5.
  ctx::TransformId C = D->mergeStatic(5, M); // Î5.
  ctx::TransformId Inv = D->inv(C);          // Ǐ5.
  ctx::TransformId G = D->globalize(Inv);
  const ctx::Transformer &TG = D->transformer(G);
  EXPECT_EQ(TG.Exits.size(), 1u);
  EXPECT_TRUE(TG.Entries.empty());
  // globalize of an entries-bearing transform must wildcard.
  ctx::TransformId G2 = D->globalize(C);
  EXPECT_TRUE(D->transformer(G2).Wild);
  EXPECT_TRUE(D->transformer(G2).Entries.empty());
  // retarget re-enters the loader's context with a wildcard.
  ctx::CtxtVec M2;
  M2.push_back(ctx::elemOfEntity(9));
  ctx::TransformId RT = D->retarget(G, M2);
  const ctx::Transformer &TR = D->transformer(RT);
  EXPECT_TRUE(TR.Wild);
  EXPECT_EQ(TR.Entries, M2);
  EXPECT_EQ(TR.Exits, TG.Exits);
}

} // namespace
