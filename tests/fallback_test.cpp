//===- tests/fallback_test.cpp - Degradation ladder and fact fixtures -----===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Exercises the graceful-degradation ladder (solveWithFallback descending
// 2-object+H -> 2-type+H -> 1-object -> insensitive on budget exhaustion)
// and the hardened facts reader against malformed fixtures built with the
// fault-injection helpers — both strict and lenient modes.
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/FaultInjection.h"
#include "workload/Generator.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <string>

using namespace ctp;
using ctx::Abstraction;

namespace {

facts::FactDB testDB() {
  workload::WorkloadParams Params;
  Params.Drivers = 2;
  Params.Scenarios = 3;
  Params.Seed = 31;
  return facts::extract(workload::generate(Params));
}

//===----------------------------------------------------------------------===//
// Ladder shape.
//===----------------------------------------------------------------------===//

TEST(FallbackTest, DefaultLadderDescendsFromTwoObject) {
  auto L = analysis::defaultLadder(ctx::twoObjectH(Abstraction::ContextString));
  ASSERT_EQ(L.size(), 6u);
  EXPECT_EQ(L[0].name(), ctx::twoObjectH(Abstraction::ContextString).name());
  EXPECT_EQ(L[1].name(), ctx::twoTypeH(Abstraction::ContextString).name());
  EXPECT_EQ(L[2].name(), ctx::oneObject(Abstraction::ContextString).name());
  EXPECT_EQ(L[3].name(), ctx::cutShortcut(Abstraction::ContextString).name());
  EXPECT_EQ(L[4].name(), ctx::insensitive(Abstraction::ContextString).name());
  EXPECT_EQ(L[5].name(), ctx::unification(Abstraction::ContextString).name());
}

TEST(FallbackTest, DefaultLadderKeepsAbstraction) {
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const auto &Cfg : analysis::defaultLadder(ctx::twoObjectH(A)))
      EXPECT_EQ(Cfg.Abs, A);
}

TEST(FallbackTest, InsensitiveLadderKeepsUnifySafetyNet) {
  auto L =
      analysis::defaultLadder(ctx::insensitive(Abstraction::ContextString));
  ASSERT_EQ(L.size(), 2u);
  EXPECT_EQ(L[1].name(), ctx::unification(Abstraction::ContextString).name());
}

TEST(FallbackTest, UnifyLadderIsTerminal) {
  auto L =
      analysis::defaultLadder(ctx::unification(Abstraction::ContextString));
  ASSERT_EQ(L.size(), 1u);
}

TEST(FallbackTest, MidLadderStartSkipsMorePreciseRungs) {
  auto L = analysis::defaultLadder(ctx::twoTypeH(Abstraction::ContextString));
  ASSERT_EQ(L.size(), 5u);
  EXPECT_EQ(L[0].name(), ctx::twoTypeH(Abstraction::ContextString).name());
  EXPECT_EQ(L[1].name(), ctx::oneObject(Abstraction::ContextString).name());
}

TEST(FallbackTest, UnlistedConfigFallsThroughWholeLadder) {
  auto L = analysis::defaultLadder(ctx::oneCallH(Abstraction::ContextString));
  ASSERT_EQ(L.size(), 6u);
  EXPECT_EQ(L[0].name(), ctx::oneCallH(Abstraction::ContextString).name());
  EXPECT_EQ(L[1].name(), ctx::twoTypeH(Abstraction::ContextString).name());
}

//===----------------------------------------------------------------------===//
// Descent behaviour.
//===----------------------------------------------------------------------===//

TEST(FallbackTest, ConvergedRunIsNotDegraded) {
  facts::FactDB DB = testDB();
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString));
  EXPECT_EQ(O.RungUsed, 0u);
  EXPECT_FALSE(O.Degraded);
  ASSERT_EQ(O.Attempts.size(), 1u);
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::Converged);
  EXPECT_EQ(O.R.Stat.Term, TerminationReason::Converged);
}

TEST(FallbackTest, ForcedTripDescendsOneRung) {
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armBudgetTrip(TerminationReason::DeadlineExceeded, 50);
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString));
  fault::reset();

  // Rung 0 trips on the injected fault; the one-shot disarm lets rung 1
  // run clean and converge.
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::DeadlineExceeded);
  EXPECT_EQ(O.Attempts[1].Term, TerminationReason::Converged);
  EXPECT_EQ(O.RungUsed, 1u);
  EXPECT_TRUE(O.Degraded);
  EXPECT_EQ(O.R.Stat.Term, TerminationReason::Converged);
  EXPECT_EQ(O.R.Config.name(),
            ctx::twoTypeH(Abstraction::ContextString).name());
  EXPECT_GT(O.R.Pts.size(), 0u);
}

TEST(FallbackTest, ExhaustedLadderReturnsLowestPartial) {
  facts::FactDB DB = testDB();
  analysis::FallbackOptions Opts;
  Opts.Budget.MaxDerivations = 1; // Trips every rung (halving floors at 1).
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString), Opts);
  // The descent visits every rung in ladder order — down through the
  // contextless flavours to the unify floor — and each one reports the
  // budget trip, not convergence.
  const auto Ladder =
      analysis::defaultLadder(ctx::twoObjectH(Abstraction::ContextString));
  ASSERT_EQ(O.Attempts.size(), 6u);
  for (std::size_t I = 0; I < O.Attempts.size(); ++I) {
    EXPECT_EQ(O.Attempts[I].Config.name(), Ladder[I].name());
    EXPECT_EQ(O.Attempts[I].Term, TerminationReason::DerivationCapHit);
  }
  EXPECT_EQ(O.RungUsed, 5u);
  EXPECT_TRUE(O.Degraded);
  EXPECT_NE(O.R.Stat.Term, TerminationReason::Converged);
}

TEST(FallbackTest, TrippedRunDescendsToCutShortcut) {
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armBudgetTrip(TerminationReason::DeadlineExceeded, 50);
  analysis::FallbackOptions Opts;
  Opts.Ladder = {ctx::twoObjectH(Abstraction::ContextString),
                 ctx::cutShortcut(Abstraction::ContextString)};
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString), Opts);
  fault::reset();
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::DeadlineExceeded);
  EXPECT_EQ(O.Attempts[1].Term, TerminationReason::Converged);
  EXPECT_EQ(O.RungUsed, 1u);
  EXPECT_EQ(O.R.Config.name(),
            ctx::cutShortcut(Abstraction::ContextString).name());
  EXPECT_GT(O.R.Pts.size(), 0u);
}

TEST(FallbackTest, TrippedRunDescendsToUnify) {
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armBudgetTrip(TerminationReason::DeadlineExceeded, 50);
  analysis::FallbackOptions Opts;
  Opts.Ladder = {ctx::twoObjectH(Abstraction::ContextString),
                 ctx::unification(Abstraction::ContextString)};
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString), Opts);
  fault::reset();
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::DeadlineExceeded);
  EXPECT_EQ(O.Attempts[1].Term, TerminationReason::Converged);
  EXPECT_EQ(O.RungUsed, 1u);
  EXPECT_EQ(O.R.Config.name(),
            ctx::unification(Abstraction::ContextString).name());
  EXPECT_GT(O.R.Pts.size(), 0u);
}

TEST(FallbackTest, DatalogLadderRunsContextlessRungsNatively) {
  // A datalog ladder still bottoms out on the native-only contextless
  // flavours: a rung with no datalog rule set must not be skipped.
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armBudgetTrip(TerminationReason::DeadlineExceeded, 50);
  analysis::FallbackOptions Opts;
  Opts.UseDatalog = true;
  Opts.Ladder = {ctx::twoObjectH(Abstraction::ContextString),
                 ctx::unification(Abstraction::ContextString)};
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString), Opts);
  fault::reset();
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.Attempts[1].Term, TerminationReason::Converged);
  EXPECT_EQ(O.R.Config.name(),
            ctx::unification(Abstraction::ContextString).name());
  EXPECT_GT(O.R.Pts.size(), 0u);
}

TEST(FallbackTest, DatalogBackendDescendsToo) {
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armBudgetTrip(TerminationReason::MemoryCapHit, 50);
  analysis::FallbackOptions Opts;
  Opts.UseDatalog = true;
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString), Opts);
  fault::reset();
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::MemoryCapHit);
  EXPECT_EQ(O.RungUsed, 1u);
  EXPECT_EQ(O.R.Stat.Term, TerminationReason::Converged);
  EXPECT_TRUE(O.Degraded);
}

TEST(FallbackTest, MemoryTripDescendsLikeAnyExhaustion) {
  facts::FactDB DB = testDB();
  fault::reset();
  // One-shot simulated pressure: rung 0's meter maps it to a
  // MemoryBudget trip; the window is past by rung 1, which converges.
  fault::armMemFault(fault::MemFault::SoftPressure, 50);
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString));
  fault::reset();
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::MemoryBudget);
  EXPECT_EQ(O.Attempts[1].Term, TerminationReason::Converged);
  EXPECT_EQ(O.RungUsed, 1u);
  EXPECT_TRUE(O.Degraded);
  EXPECT_EQ(O.R.Config.name(),
            ctx::twoTypeH(Abstraction::ContextString).name());
  EXPECT_GT(O.R.Pts.size(), 0u);
}

TEST(FallbackTest, SustainedMemoryPressureTripsEveryRung) {
  facts::FactDB DB = testDB();
  fault::reset();
  // A sustained burst (an effectively unbounded window) trips every
  // rung of the full ladder on MemoryBudget — including the native-only
  // contextless flavours — and the outcome is the lowest partial.
  fault::armMemFault(fault::MemFault::SoftPressure, 50, 1u << 30);
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString));
  fault::reset();
  const auto Ladder =
      analysis::defaultLadder(ctx::twoObjectH(Abstraction::ContextString));
  ASSERT_EQ(O.Attempts.size(), Ladder.size());
  for (std::size_t I = 0; I < O.Attempts.size(); ++I) {
    EXPECT_EQ(O.Attempts[I].Config.name(), Ladder[I].name());
    EXPECT_EQ(O.Attempts[I].Term, TerminationReason::MemoryBudget);
  }
  EXPECT_EQ(O.RungUsed, Ladder.size() - 1);
  EXPECT_TRUE(O.Degraded);
  EXPECT_NE(O.R.Stat.Term, TerminationReason::Converged);
}

TEST(FallbackTest, DatalogBackendTripsOnMemoryPressureToo) {
  // The governor is wired through BudgetMeter, which both back-ends
  // poll — the datalog engine must stop on pressure just like the
  // native solver.
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armMemFault(fault::MemFault::SoftPressure, 50);
  analysis::FallbackOptions Opts;
  Opts.UseDatalog = true;
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString), Opts);
  fault::reset();
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::MemoryBudget);
  EXPECT_EQ(O.Attempts[1].Term, TerminationReason::Converged);
  EXPECT_TRUE(O.Degraded);
}

TEST(FallbackTest, ExplicitLadderIsRespected) {
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armBudgetTrip(TerminationReason::DeadlineExceeded, 50);
  analysis::FallbackOptions Opts;
  Opts.Ladder = {ctx::twoObjectH(Abstraction::ContextString),
                 ctx::insensitive(Abstraction::ContextString)};
  analysis::FallbackOutcome O = analysis::solveWithFallback(
      DB, ctx::twoObjectH(Abstraction::ContextString), Opts);
  fault::reset();
  ASSERT_EQ(O.Attempts.size(), 2u);
  EXPECT_EQ(O.R.Config.name(),
            ctx::insensitive(Abstraction::ContextString).name());
}

//===----------------------------------------------------------------------===//
// Malformed-facts fixtures (strict and lenient reads).
//===----------------------------------------------------------------------===//

class MalformedFactsTest : public ::testing::Test {
protected:
  void SetUp() override {
    DB = facts::extract(workload::figure1().P);
    Dir = ::testing::TempDir() + "/ctp_malformed_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
    ASSERT_EQ(facts::writeFactsDir(DB, Dir), "");
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  facts::FactDB DB;
  std::string Dir;
};

TEST_F(MalformedFactsTest, StrictArityErrorCarriesLocationAndCounts) {
  ASSERT_TRUE(fault::injectFactsLine(Dir, "Load.facts", "onlyone\ttwo"));
  facts::FactDB Back;
  std::string Err = facts::readFactsDir(Dir, Back);
  ASSERT_NE(Err, "");
  EXPECT_NE(Err.find("Load.facts:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("expected 3 fields, got 2"), std::string::npos) << Err;
}

TEST_F(MalformedFactsTest, StrictRejectsDuplicateDomainEntry) {
  ASSERT_FALSE(DB.VarNames.empty());
  ASSERT_TRUE(fault::injectFactsLine(Dir, "Domain.var", DB.VarNames[0]));
  facts::FactDB Back;
  std::string Err = facts::readFactsDir(Dir, Back);
  ASSERT_NE(Err, "");
  EXPECT_NE(Err.find("Domain.var:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("duplicate domain entry"), std::string::npos) << Err;
}

TEST_F(MalformedFactsTest, StrictRejectsMalformedOrdinal) {
  ASSERT_FALSE(DB.VarNames.empty());
  ASSERT_FALSE(DB.InvokeNames.empty());
  ASSERT_TRUE(fault::injectFactsLine(
      Dir, "Actual.facts",
      DB.VarNames[0] + "\t" + DB.InvokeNames[0] + "\t12x"));
  facts::FactDB Back;
  std::string Err = facts::readFactsDir(Dir, Back);
  ASSERT_NE(Err, "");
  EXPECT_NE(Err.find("Actual.facts:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("malformed ordinal"), std::string::npos) << Err;
}

TEST_F(MalformedFactsTest, StrictRejectsUnknownEntityName) {
  ASSERT_TRUE(fault::injectFactsLine(Dir, "Assign.facts",
                                     "no_such_var\talso_missing"));
  facts::FactDB Back;
  std::string Err = facts::readFactsDir(Dir, Back);
  ASSERT_NE(Err, "");
  EXPECT_NE(Err.find("Assign.facts:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("unknown entity"), std::string::npos) << Err;
}

TEST_F(MalformedFactsTest, LenientSkipsCountsAndStillAnalyzes) {
  ASSERT_TRUE(fault::injectFactsLine(Dir, "Load.facts", "onlyone\ttwo"));
  ASSERT_TRUE(fault::injectFactsLine(
      Dir, "Actual.facts",
      DB.VarNames[0] + "\t" + DB.InvokeNames[0] + "\tnotanumber"));

  facts::FactDB Back;
  facts::FactsReadOptions Opts;
  Opts.Lenient = true;
  facts::FactsReadReport Report;
  ASSERT_EQ(facts::readFactsDir(Dir, Back, Opts, &Report), "");
  EXPECT_EQ(Report.SkippedLines, 2u);
  ASSERT_EQ(Report.Warnings.size(), 2u);
  EXPECT_NE(Report.Warnings[0].find("Actual.facts:"), std::string::npos);
  EXPECT_NE(Report.Warnings[1].find("Load.facts:"), std::string::npos);

  // The injected lines were pure garbage, so the lenient read reproduces
  // the clean database and the analysis answer is unchanged.
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::ContextString);
  analysis::Results FromClean = analysis::solve(DB, Cfg);
  analysis::Results FromLenient = analysis::solve(Back, Cfg);
  EXPECT_EQ(FromLenient.ciPts(), FromClean.ciPts());
  EXPECT_EQ(FromLenient.ciCall(), FromClean.ciCall());
}

TEST_F(MalformedFactsTest, LenientStillFailsOnMissingDirectory) {
  facts::FactDB Back;
  facts::FactsReadOptions Opts;
  Opts.Lenient = true;
  EXPECT_NE(facts::readFactsDir(Dir + "/nonexistent", Back, Opts), "");
}

} // namespace
