//===- tests/flavours_test.cpp - Contextless flavour semantics ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The two contextless rungs below the Figure-6 matrix:
//  * cutshortcut — cut-plan eligibility on hand-built programs (an
//    identity forwarder earns a shortcut, a leaking forwarder does not)
//    and the theory-backed containment cutshortcut ⊆ insensitive.
//  * unify — the union-find fast path and the view-backed native path
//    (the one ctp-verify certifies) must agree exactly on the ci
//    projections; insensitive ⊆ unify; determinism.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "analysis/Unify.h"
#include "ctx/CutShortcut.h"
#include "facts/Extract.h"
#include "ir/Builder.h"
#include "workload/Generator.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <string>

using namespace ctp;
using ctx::Abstraction;

namespace {

template <typename T>
bool isSubset(const std::vector<T> &A, const std::vector<T> &B) {
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

facts::FactDB workloadDB(std::uint64_t Seed) {
  workload::WorkloadParams P;
  P.DataClasses = 3;
  P.WrapperChains = 2;
  P.WrapperDepth = 2;
  P.Factories = 2;
  P.Containers = 2;
  P.PolyBases = 2;
  P.PolyVariants = 3;
  P.Drivers = 2;
  P.Scenarios = 3;
  P.Seed = Seed;
  return facts::extract(workload::generate(P));
}

facts::Id methodByName(const facts::FactDB &DB, const std::string &Part) {
  for (std::size_t I = 0; I < DB.MethodNames.size(); ++I)
    if (DB.MethodNames[I].find(Part) != std::string::npos)
      return static_cast<facts::Id>(I);
  return facts::InvalidId;
}

//===----------------------------------------------------------------------===//
// Cut-plan eligibility.
//===----------------------------------------------------------------------===//

TEST(CutShortcutPlanTest, IdentityForwarderEarnsShortcut) {
  ir::Builder B;
  ir::TypeId Obj = B.addClass("Object");
  // id(p) { return p; } — the textbook cut edge.
  ir::MethodId Id = B.addStaticMethod(Obj, "id", 1);
  B.addReturn(Id, B.formal(Id, 0));
  ir::MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  ir::VarId X = B.addLocal(Main, "x");
  ir::VarId Y = B.addLocal(Main, "y");
  B.addNew(Main, X, Obj, "h0");
  B.addStaticCall(Main, Id, {X}, Y, "c0");

  facts::FactDB DB = facts::extract(B.take());
  ctx::CutShortcutPlan Plan = ctx::buildCutShortcutPlan(DB);
  facts::Id M = methodByName(DB, "id");
  ASSERT_NE(M, facts::InvalidId);
  EXPECT_TRUE(Plan.hasShortcut(M, 0));
  EXPECT_EQ(Plan.numShortcuts(), 1u);
  // The forwarded return variable is cut in exchange.
  bool CutSeen = false;
  for (const auto &F : DB.Returns)
    if (F.Method == M)
      CutSeen |= Plan.isCutReturn(M, F.Var);
  EXPECT_TRUE(CutSeen);
}

TEST(CutShortcutPlanTest, ForwardingChainEarnsShortcut) {
  ir::Builder B;
  ir::TypeId Obj = B.addClass("Object");
  // id2(p) { q = p; return q; } — forwarding through a local still cuts.
  ir::MethodId Id2 = B.addStaticMethod(Obj, "id2", 1);
  ir::VarId Q = B.addLocal(Id2, "q");
  B.addAssign(Id2, Q, B.formal(Id2, 0));
  B.addReturn(Id2, Q);
  ir::MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  ir::VarId X = B.addLocal(Main, "x");
  ir::VarId Y = B.addLocal(Main, "y");
  B.addNew(Main, X, Obj, "h0");
  B.addStaticCall(Main, Id2, {X}, Y, "c0");

  facts::FactDB DB = facts::extract(B.take());
  ctx::CutShortcutPlan Plan = ctx::buildCutShortcutPlan(DB);
  facts::Id M = methodByName(DB, "id2");
  ASSERT_NE(M, facts::InvalidId);
  EXPECT_TRUE(Plan.hasShortcut(M, 0));
}

TEST(CutShortcutPlanTest, LeakingForwarderIsIneligible) {
  ir::Builder B;
  ir::TypeId Obj = B.addClass("Object");
  ir::GlobalId G = B.addGlobal("G");
  // leak(p) { G = p; return p; } — the global store makes the value
  // observable outside the forwarded chain, so no cut.
  ir::MethodId Leak = B.addStaticMethod(Obj, "leak", 1);
  B.addGlobalStore(Leak, G, B.formal(Leak, 0));
  B.addReturn(Leak, B.formal(Leak, 0));
  ir::MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  ir::VarId X = B.addLocal(Main, "x");
  ir::VarId Y = B.addLocal(Main, "y");
  B.addNew(Main, X, Obj, "h0");
  B.addStaticCall(Main, Leak, {X}, Y, "c0");

  facts::FactDB DB = facts::extract(B.take());
  ctx::CutShortcutPlan Plan = ctx::buildCutShortcutPlan(DB);
  facts::Id M = methodByName(DB, "leak");
  ASSERT_NE(M, facts::InvalidId);
  EXPECT_FALSE(Plan.hasShortcut(M, 0));
  EXPECT_EQ(Plan.numShortcuts(), 0u);
}

TEST(CutShortcutPlanTest, ShortcutDeliversPreciseAnswer) {
  // Two call sites through one forwarder: the insensitive analysis mixes
  // the two returns; the shortcut edges keep them apart.
  ir::Builder B;
  ir::TypeId Obj = B.addClass("Object");
  ir::MethodId Id = B.addStaticMethod(Obj, "id", 1);
  B.addReturn(Id, B.formal(Id, 0));
  ir::MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  ir::VarId A = B.addLocal(Main, "a");
  ir::VarId RA = B.addLocal(Main, "ra");
  ir::VarId C = B.addLocal(Main, "c");
  ir::VarId RC = B.addLocal(Main, "rc");
  B.addNew(Main, A, Obj, "h_a");
  B.addNew(Main, C, Obj, "h_c");
  B.addStaticCall(Main, Id, {A}, RA, "c_a");
  B.addStaticCall(Main, Id, {C}, RC, "c_c");
  facts::FactDB DB = facts::extract(B.take());

  ctx::Config Cut;
  ASSERT_TRUE(
      ctx::configByName("cutshortcut", Abstraction::TransformerString, Cut));
  ctx::Config Ins = ctx::insensitive(Abstraction::TransformerString);
  auto CutPts = analysis::solve(DB, Cut).ciPts();
  auto InsPts = analysis::solve(DB, Ins).ciPts();
  EXPECT_TRUE(isSubset(CutPts, InsPts));
  // The precision win is strict here: insensitive conflates ra/rc.
  EXPECT_LT(CutPts.size(), InsPts.size());
}

//===----------------------------------------------------------------------===//
// Containments and path agreement on generated workloads.
//===----------------------------------------------------------------------===//

struct FlavourSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlavourSweepTest, CutShortcutRefinesInsensitiveRefinesUnify) {
  facts::FactDB DB = workloadDB(GetParam());
  ctx::Config Cut, Uni;
  ASSERT_TRUE(
      ctx::configByName("cutshortcut", Abstraction::TransformerString, Cut));
  ASSERT_TRUE(
      ctx::configByName("unify", Abstraction::TransformerString, Uni));
  analysis::Results RCut = analysis::solve(DB, Cut);
  analysis::Results RIns =
      analysis::solve(DB, ctx::insensitive(Abstraction::TransformerString));
  analysis::Results RUni = analysis::solve(DB, Uni);
  EXPECT_TRUE(isSubset(RCut.ciPts(), RIns.ciPts())) << GetParam();
  EXPECT_TRUE(isSubset(RCut.ciCall(), RIns.ciCall())) << GetParam();
  EXPECT_TRUE(isSubset(RIns.ciPts(), RUni.ciPts())) << GetParam();
  EXPECT_TRUE(isSubset(RIns.ciHpts(), RUni.ciHpts())) << GetParam();
  EXPECT_TRUE(isSubset(RIns.ciCall(), RUni.ciCall())) << GetParam();
}

TEST_P(FlavourSweepTest, UnifyFastAndViewPathsAgree) {
  // The union-find fast path and the view-backed native path (the one
  // ctp-verify certifies with closure/support) must produce the same ci
  // projections — this differential is the fast path's certificate.
  facts::FactDB DB = workloadDB(GetParam());
  ctx::Config Uni;
  ASSERT_TRUE(
      ctx::configByName("unify", Abstraction::TransformerString, Uni));
  analysis::Results Fast = analysis::solve(DB, Uni);
  analysis::SolverOptions SO;
  SO.Provenance.Enabled = true; // Routes through the unify-view engine.
  analysis::Results View = analysis::solve(DB, Uni, SO);
  EXPECT_EQ(Fast.ciPts(), View.ciPts()) << GetParam();
  EXPECT_EQ(Fast.ciHpts(), View.ciHpts()) << GetParam();
  EXPECT_EQ(Fast.ciCall(), View.ciCall()) << GetParam();
}

TEST_P(FlavourSweepTest, UnifyIsDeterministic) {
  facts::FactDB DB = workloadDB(GetParam());
  ctx::Config Uni;
  ASSERT_TRUE(
      ctx::configByName("unify", Abstraction::TransformerString, Uni));
  analysis::Results A = analysis::solve(DB, Uni);
  analysis::Results B2 = analysis::solve(DB, Uni);
  EXPECT_EQ(A.ciPts(), B2.ciPts());
  EXPECT_EQ(A.ciHpts(), B2.ciHpts());
  EXPECT_EQ(A.ciCall(), B2.ciCall());
  EXPECT_EQ(A.Stat.NumPts, B2.Stat.NumPts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlavourSweepTest,
                         ::testing::Values(5u, 17u, 29u, 41u));

} // namespace
