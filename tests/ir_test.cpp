//===- tests/ir_test.cpp - IR model, builder, dispatch, validator ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Ir.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ir;

namespace {

TEST(IrBuilderTest, BuildsValidMinimalProgram) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  B.addNew(Main, X, Obj, "h0");
  Program P = B.take();
  EXPECT_EQ(validate(P), "");
  EXPECT_EQ(P.Methods.size(), 1u);
  EXPECT_EQ(P.Heaps.size(), 1u);
}

TEST(IrBuilderTest, SignatureInterning) {
  Builder B;
  SigId A = B.signature("foo", 1);
  SigId A2 = B.signature("foo", 1);
  SigId C = B.signature("foo", 2);
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, C);
}

TEST(IrBuilderTest, FieldInterning) {
  Builder B;
  EXPECT_EQ(B.addField("f"), B.addField("f"));
  EXPECT_NE(B.addField("f"), B.addField("g"));
}

TEST(IrDispatchTest, OverridesWin) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Base = B.addClass("Base", Obj);
  TypeId Derived = B.addClass("Derived", Base);
  MethodId BaseOp = B.addMethod(Base, "op", 0);
  MethodId DerivedOp = B.addMethod(Derived, "op", 0);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  Program P = B.take();

  SigId Op = 0; // First interned signature in this program is main's? No:
  // signatures are interned in method-creation order: Base.op first.
  Op = P.Methods[BaseOp].Sig;
  EXPECT_EQ(P.resolveDispatch(Base, Op), BaseOp);
  EXPECT_EQ(P.resolveDispatch(Derived, Op), DerivedOp);
  // Object does not implement op.
  EXPECT_EQ(P.resolveDispatch(Obj, Op), InvalidId);
}

TEST(IrDispatchTest, InheritedMethod) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Base = B.addClass("Base", Obj);
  TypeId Leaf = B.addClass("Leaf", Base);
  MethodId BaseOp = B.addMethod(Base, "op", 1);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  Program P = B.take();
  EXPECT_EQ(P.resolveDispatch(Leaf, P.Methods[BaseOp].Sig), BaseOp);
}

TEST(IrSubtypeTest, ChainWalk) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId A = B.addClass("A", Obj);
  TypeId B2 = B.addClass("B", A);
  TypeId C = B.addClass("C", Obj);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  Program P = B.take();
  EXPECT_TRUE(P.isSubtypeOf(B2, A));
  EXPECT_TRUE(P.isSubtypeOf(B2, Obj));
  EXPECT_TRUE(P.isSubtypeOf(A, A));
  EXPECT_FALSE(P.isSubtypeOf(A, B2));
  EXPECT_FALSE(P.isSubtypeOf(C, A));
}

TEST(IrValidateTest, CatchesCrossMethodVariable) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  MethodId Other = B.addStaticMethod(Obj, "other", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  VarId Y = B.addLocal(Other, "y");
  B.addAssign(Main, X, Y); // Y belongs to Other: invalid.
  Program P = B.program();
  EXPECT_NE(validate(P), "");
}

TEST(IrValidateTest, ReportsEveryViolationNotJustTheFirst) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  MethodId Other = B.addStaticMethod(Obj, "other", 0);
  B.setMain(Main);
  // Defect 1: a statement in main uses a variable owned by other.
  VarId X = B.addLocal(Main, "x");
  VarId Y = B.addLocal(Other, "y");
  B.addAssign(Main, X, Y);
  // Defect 2: a static invocation marked as a thread spawn (spawns must
  // be virtual) — seeded by mutating the built program.
  InvokeId Call = B.addStaticCall(Main, Other, {}, InvalidId, "c0");
  Program P = B.program();
  P.Invokes[Call].IsSpawn = true;

  std::string Report = validate(P);
  // Both violations are present, each tagged with its entity kind + id.
  EXPECT_NE(Report.find("method " + std::to_string(Main) + ": "),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("does not belong to method"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("invoke " + std::to_string(Call) + ": "),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("must be virtual"), std::string::npos) << Report;
  // Multi-line: at least one newline separates the two reports.
  EXPECT_NE(Report.find('\n'), std::string::npos) << Report;
}

TEST(IrValidateTest, PaperProgramsAreValid) {
  EXPECT_EQ(validate(workload::figure1().P), "");
  EXPECT_EQ(validate(workload::figure5().P), "");
  EXPECT_EQ(validate(workload::figure7().P), "");
}

TEST(IrPrintTest, MentionsKeyConstructs) {
  workload::Figure1Program F = workload::figure1();
  std::string Dump = printProgram(F.P);
  EXPECT_NE(Dump.find("new Object(); // h1"), std::string::npos);
  EXPECT_NE(Dump.find("// c4"), std::string::npos);
  EXPECT_NE(Dump.find("return"), std::string::npos);
}

} // namespace
