//===- tests/governor_test.cpp - Resource governor budgets ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The resource governor must stop both evaluation back-ends cleanly on
// budget exhaustion, tag the partial Results with the right
// TerminationReason, and — the key soundness property — only ever truncate
// the fixpoint: every tuple of a budget-limited run must also appear in
// the converged run.
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "workload/Generator.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <set>
#include <string>

using namespace ctp;
using ctx::Abstraction;

namespace {

facts::FactDB testDB() {
  workload::WorkloadParams Params;
  Params.Drivers = 2;
  Params.Scenarios = 3;
  Params.Seed = 31;
  return facts::extract(workload::generate(Params));
}

// TransformIds are interned in first-derivation order, so raw ids are not
// comparable between a truncated run and a converged run. Render each fact
// through the run's own domain instead.
std::set<std::string> renderedPts(const analysis::Results &R) {
  std::set<std::string> S;
  for (const auto &F : R.Pts)
    S.insert(std::to_string(F.Var) + "|" + std::to_string(F.Heap) + "|" +
             R.Dom->toString(F.T));
  return S;
}

std::set<std::string> renderedCall(const analysis::Results &R) {
  std::set<std::string> S;
  for (const auto &F : R.Call)
    S.insert(std::to_string(F.Invoke) + "|" + std::to_string(F.Method) +
             "|" + R.Dom->toString(F.T));
  return S;
}

bool isSubsetOf(const std::set<std::string> &Small,
                const std::set<std::string> &Big) {
  for (const auto &X : Small)
    if (!Big.count(X))
      return false;
  return true;
}

analysis::Results solveBudgeted(const facts::FactDB &DB,
                                const ctx::Config &Cfg,
                                const BudgetSpec &Budget, bool Datalog) {
  if (Datalog)
    return analysis::solveViaDatalog(DB, Cfg, nullptr, Budget);
  analysis::SolverOptions SO;
  SO.Budget = Budget;
  return analysis::solve(DB, Cfg, SO);
}

TEST(GovernorTest, UnlimitedSpecConverges) {
  facts::FactDB DB = testDB();
  for (bool Datalog : {false, true}) {
    analysis::Results R =
        solveBudgeted(DB, ctx::twoObjectH(Abstraction::ContextString),
                      BudgetSpec(), Datalog);
    EXPECT_EQ(R.Stat.Term, TerminationReason::Converged);
    EXPECT_EQ(R.Stat.Progress.PendingWork, 0u);
    EXPECT_GT(R.Stat.Progress.Derivations, 0u);
  }
}

// The central soundness property: a derivation-capped run returns a subset
// of the converged fixpoint — for both abstractions and both back-ends.
TEST(GovernorTest, DerivationCapPartialIsSubsetOfConverged) {
  facts::FactDB DB = testDB();
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    ctx::Config Cfg = ctx::twoObjectH(A);
    for (bool Datalog : {false, true}) {
      analysis::Results Full = solveBudgeted(DB, Cfg, BudgetSpec(), Datalog);
      ASSERT_EQ(Full.Stat.Term, TerminationReason::Converged);
      ASSERT_GT(Full.Stat.Progress.Derivations, 4u);

      BudgetSpec Capped;
      Capped.MaxDerivations = Full.Stat.Progress.Derivations / 2;
      analysis::Results Part = solveBudgeted(DB, Cfg, Capped, Datalog);
      EXPECT_EQ(Part.Stat.Term, TerminationReason::DerivationCapHit)
          << "datalog=" << Datalog;
      EXPECT_GT(Part.Stat.Progress.PendingWork, 0u);
      EXPECT_LE(Part.Stat.Progress.Derivations,
                Full.Stat.Progress.Derivations);

      EXPECT_TRUE(isSubsetOf(renderedPts(Part), renderedPts(Full)))
          << "pts not a subset (datalog=" << Datalog << ")";
      EXPECT_TRUE(isSubsetOf(renderedCall(Part), renderedCall(Full)))
          << "call not a subset (datalog=" << Datalog << ")";
    }
  }
}

TEST(GovernorTest, TupleCapReportsMemoryCapHit) {
  facts::FactDB DB = testDB();
  for (bool Datalog : {false, true}) {
    BudgetSpec B;
    B.MaxTuples = 50;
    analysis::Results R = solveBudgeted(
        DB, ctx::twoObjectH(Abstraction::ContextString), B, Datalog);
    EXPECT_EQ(R.Stat.Term, TerminationReason::MemoryCapHit)
        << "datalog=" << Datalog;
  }
}

TEST(GovernorTest, PreCancelledTokenStopsBeforeWorking) {
  facts::FactDB DB = testDB();
  CancelToken Token = CancelToken::make();
  Token.cancel();
  BudgetSpec B;
  B.Cancel = Token;
  for (bool Datalog : {false, true}) {
    analysis::Results R = solveBudgeted(
        DB, ctx::twoObjectH(Abstraction::ContextString), B, Datalog);
    EXPECT_EQ(R.Stat.Term, TerminationReason::Cancelled)
        << "datalog=" << Datalog;
    // The first poll observes the token, so almost nothing was derived.
    analysis::Results Full = solveBudgeted(
        DB, ctx::twoObjectH(Abstraction::ContextString), BudgetSpec(),
        Datalog);
    EXPECT_LT(R.Pts.size(), Full.Pts.size());
  }
}

TEST(GovernorTest, FaultInjectedTripForcesReason) {
  facts::FactDB DB = testDB();
  for (bool Datalog : {false, true}) {
    fault::reset();
    fault::armBudgetTrip(TerminationReason::DeadlineExceeded, 40);
    analysis::Results R = solveBudgeted(
        DB, ctx::twoObjectH(Abstraction::ContextString), BudgetSpec(),
        Datalog);
    EXPECT_EQ(R.Stat.Term, TerminationReason::DeadlineExceeded)
        << "datalog=" << Datalog;
    EXPECT_FALSE(fault::active()) << "trip must disarm itself";

    // One-shot: the next run under the same (unlimited) spec converges.
    analysis::Results Clean = solveBudgeted(
        DB, ctx::twoObjectH(Abstraction::ContextString), BudgetSpec(),
        Datalog);
    EXPECT_EQ(Clean.Stat.Term, TerminationReason::Converged);
    fault::reset();
  }
}

TEST(GovernorTest, FaultInjectedCancellationMidRun) {
  facts::FactDB DB = testDB();
  fault::reset();
  fault::armCancellation(100);
  analysis::Results R =
      solveBudgeted(DB, ctx::twoObjectH(Abstraction::ContextString),
                    BudgetSpec(), /*Datalog=*/false);
  EXPECT_EQ(R.Stat.Term, TerminationReason::Cancelled);
  EXPECT_GT(R.Stat.Progress.Derivations, 0u) << "ran for a while first";
  fault::reset();

  // The truncated run is still a subset of the fixpoint.
  analysis::Results Full =
      solveBudgeted(DB, ctx::twoObjectH(Abstraction::ContextString),
                    BudgetSpec(), /*Datalog=*/false);
  EXPECT_TRUE(isSubsetOf(renderedPts(R), renderedPts(Full)));
}

// A real wall-clock deadline on a workload whose full solve takes hundreds
// of milliseconds: the run must stop early and say why.
TEST(GovernorTest, RealDeadlineTruncatesExpensiveRun) {
  facts::FactDB DB =
      facts::extract(workload::generatePreset("bloat"));
  BudgetSpec B;
  B.DeadlineMs = 1;
  analysis::SolverOptions SO;
  SO.Budget = B;
  analysis::Results R =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::ContextString), SO);
  EXPECT_EQ(R.Stat.Term, TerminationReason::DeadlineExceeded);
  EXPECT_GT(R.Stat.Progress.PendingWork, 0u);
}

TEST(GovernorTest, TerminationReasonNames) {
  EXPECT_STREQ(terminationReasonName(TerminationReason::Converged),
               "Converged");
  EXPECT_STREQ(terminationReasonName(TerminationReason::DeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(terminationReasonName(TerminationReason::DerivationCapHit),
               "DerivationCapHit");
  EXPECT_STREQ(terminationReasonName(TerminationReason::MemoryCapHit),
               "MemoryCapHit");
  EXPECT_STREQ(terminationReasonName(TerminationReason::Cancelled),
               "Cancelled");
}

TEST(GovernorTest, ScaledForRungHalvesEveryLimit) {
  BudgetSpec B;
  B.DeadlineMs = 100;
  B.MaxDerivations = 8;
  B.MaxTuples = 0; // Unlimited stays unlimited at every rung.
  BudgetSpec R1 = B.scaledForRung(1);
  EXPECT_EQ(R1.DeadlineMs, 50u);
  EXPECT_EQ(R1.MaxDerivations, 4u);
  EXPECT_EQ(R1.MaxTuples, 0u);
  BudgetSpec R5 = B.scaledForRung(5);
  EXPECT_EQ(R5.DeadlineMs, 3u);
  EXPECT_EQ(R5.MaxDerivations, 1u) << "never scales below 1";
  BudgetSpec R99 = B.scaledForRung(99);
  EXPECT_EQ(R99.DeadlineMs, 1u);
}

} // namespace
