//===- tests/workload_test.cpp - Synthetic workload generator tests -------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "workload/Generator.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace ctp;
using workload::WorkloadParams;

namespace {

TEST(WorkloadTest, GeneratesValidPrograms) {
  for (const std::string &Name : workload::presetNames()) {
    ir::Program P = workload::generatePreset(Name);
    EXPECT_EQ(ir::validate(P), "") << Name;
    EXPECT_GT(P.Methods.size(), 5u) << Name;
    EXPECT_GT(P.Heaps.size(), 10u) << Name;
  }
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadParams Params;
  Params.Seed = 99;
  ir::Program A = workload::generate(Params);
  ir::Program B = workload::generate(Params);
  EXPECT_EQ(ir::printProgram(A), ir::printProgram(B));
}

TEST(WorkloadTest, SeedChangesProgram) {
  WorkloadParams P1, P2;
  P1.Seed = 1;
  P2.Seed = 2;
  EXPECT_NE(ir::printProgram(workload::generate(P1)),
            ir::printProgram(workload::generate(P2)));
}

TEST(WorkloadTest, BloatPresetHasAstPattern) {
  WorkloadParams P = workload::presetParams("bloat");
  EXPECT_GT(P.AstScenarios, 0u);
  ir::Program Prog = workload::generate(P);
  bool HasNode = false, HasStack = false;
  for (const auto &T : Prog.Types) {
    HasNode |= T.Name == "Node";
    HasStack |= T.Name == "NodeStack";
  }
  EXPECT_TRUE(HasNode);
  EXPECT_TRUE(HasStack);
}

TEST(WorkloadTest, ExtractsToConsistentFacts) {
  for (const std::string &Name : workload::presetNames()) {
    facts::FactDB DB = facts::extract(workload::generatePreset(Name));
    EXPECT_EQ(DB.validate(), "") << Name;
    EXPECT_GT(DB.VirtualInvokes.size(), 0u) << Name;
    EXPECT_GT(DB.StaticInvokes.size(), 0u) << Name;
    EXPECT_GT(DB.Stores.size(), 0u) << Name;
    EXPECT_GT(DB.Loads.size(), 0u) << Name;
  }
}

// Writes \p Params' facts as TSV, then returns per-file contents with
// every line mentioning a spawn/taint-marked entity removed. Spawn and
// taint material carries distinctive name markers ("spw"/"work"/"tnt"/
// "wshared"/"held"), so the filtered view is exactly the scenario-free
// remainder of the program.
std::map<std::string, std::string> scenarioFreeFacts(
    const WorkloadParams &Params, const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "/ctp_wl_toggle_" + Tag;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  facts::FactDB DB = facts::extract(workload::generate(Params));
  EXPECT_EQ(facts::writeFactsDir(DB, Dir), "");
  const char *Markers[] = {"tnt", "spw", "work", "wshared", "held"};
  std::map<std::string, std::string> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    std::ifstream In(Entry.path());
    std::ostringstream Kept;
    std::string Line;
    while (std::getline(In, Line)) {
      std::string Lower = Line;
      std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                     [](unsigned char C) { return std::tolower(C); });
      bool Marked = false;
      for (const char *M : Markers)
        Marked |= Lower.find(M) != std::string::npos;
      if (!Marked)
        Kept << Line << '\n';
    }
    Files[Entry.path().filename().string()] = Kept.str();
  }
  std::filesystem::remove_all(Dir);
  return Files;
}

// Satellite: toggling the spawn/taint scenario knobs must not perturb any
// other generated fact. The name-based fact fingerprint gates `--resume`
// snapshot reuse, so scenario flags have to shift only their own marked
// entities, never the ids or names of the rest of the program.
TEST(WorkloadTest, ScenarioTogglesLeaveOtherFactsStable) {
  for (const std::string &Name : {std::string("luindex"), std::string("pmd")}) {
    WorkloadParams On = workload::presetParams(Name);
    ASSERT_GT(On.SpawnScenarios, 0u) << Name;
    ASSERT_GT(On.TaintScenarios, 0u) << Name;
    WorkloadParams Off = On;
    Off.SpawnScenarios = 0;
    Off.WorkerClasses = 0;
    Off.TaintScenarios = 0;
    auto WithScenarios = scenarioFreeFacts(On, Name + "_on");
    auto WithoutScenarios = scenarioFreeFacts(Off, Name + "_off");
    ASSERT_EQ(WithScenarios.size(), WithoutScenarios.size()) << Name;
    for (const auto &[File, Content] : WithScenarios)
      EXPECT_EQ(Content, WithoutScenarios[File]) << Name << "/" << File;
  }
}

// The taint knob emits annotated sources, sinks, and sanitizers; turning
// it off produces a program with no taint surface at all.
TEST(WorkloadTest, TaintKnobControlsTaintFacts) {
  WorkloadParams P = workload::presetParams("luindex");
  facts::FactDB On = facts::extract(workload::generate(P));
  EXPECT_GT(On.TaintSources.size(), 0u);
  EXPECT_GT(On.TaintSinks.size(), 0u);
  EXPECT_GT(On.Sanitizers.size(), 0u);
  P.TaintScenarios = 0;
  facts::FactDB Off = facts::extract(workload::generate(P));
  EXPECT_EQ(Off.TaintSources.size(), 0u);
  EXPECT_EQ(Off.TaintSinks.size(), 0u);
  EXPECT_EQ(Off.Sanitizers.size(), 0u);
}

TEST(WorkloadTest, ZeroSizedKnobsStillProduceAProgram) {
  WorkloadParams P;
  P.DataClasses = 0;
  P.WrapperChains = 0;
  P.Factories = 0;
  P.Containers = 0;
  P.PolyBases = 0;
  P.Drivers = 0;
  P.Scenarios = 0;
  ir::Program Prog = workload::generate(P);
  EXPECT_EQ(ir::validate(Prog), "");
}

} // namespace
