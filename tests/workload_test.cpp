//===- tests/workload_test.cpp - Synthetic workload generator tests -------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "facts/Extract.h"
#include "workload/Generator.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

using namespace ctp;
using workload::WorkloadParams;

namespace {

TEST(WorkloadTest, GeneratesValidPrograms) {
  for (const std::string &Name : workload::presetNames()) {
    ir::Program P = workload::generatePreset(Name);
    EXPECT_EQ(ir::validate(P), "") << Name;
    EXPECT_GT(P.Methods.size(), 5u) << Name;
    EXPECT_GT(P.Heaps.size(), 10u) << Name;
  }
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  WorkloadParams Params;
  Params.Seed = 99;
  ir::Program A = workload::generate(Params);
  ir::Program B = workload::generate(Params);
  EXPECT_EQ(ir::printProgram(A), ir::printProgram(B));
}

TEST(WorkloadTest, SeedChangesProgram) {
  WorkloadParams P1, P2;
  P1.Seed = 1;
  P2.Seed = 2;
  EXPECT_NE(ir::printProgram(workload::generate(P1)),
            ir::printProgram(workload::generate(P2)));
}

TEST(WorkloadTest, BloatPresetHasAstPattern) {
  WorkloadParams P = workload::presetParams("bloat");
  EXPECT_GT(P.AstScenarios, 0u);
  ir::Program Prog = workload::generate(P);
  bool HasNode = false, HasStack = false;
  for (const auto &T : Prog.Types) {
    HasNode |= T.Name == "Node";
    HasStack |= T.Name == "NodeStack";
  }
  EXPECT_TRUE(HasNode);
  EXPECT_TRUE(HasStack);
}

TEST(WorkloadTest, ExtractsToConsistentFacts) {
  for (const std::string &Name : workload::presetNames()) {
    facts::FactDB DB = facts::extract(workload::generatePreset(Name));
    EXPECT_EQ(DB.validate(), "") << Name;
    EXPECT_GT(DB.VirtualInvokes.size(), 0u) << Name;
    EXPECT_GT(DB.StaticInvokes.size(), 0u) << Name;
    EXPECT_GT(DB.Stores.size(), 0u) << Name;
    EXPECT_GT(DB.Loads.size(), 0u) << Name;
  }
}

TEST(WorkloadTest, ZeroSizedKnobsStillProduceAProgram) {
  WorkloadParams P;
  P.DataClasses = 0;
  P.WrapperChains = 0;
  P.Factories = 0;
  P.Containers = 0;
  P.PolyBases = 0;
  P.Drivers = 0;
  P.Scenarios = 0;
  ir::Program Prog = workload::generate(P);
  EXPECT_EQ(ir::validate(Prog), "");
}

} // namespace
