//===- tests/subsumption_test.cpp - Section 8 subsumption collapsing ------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Tests of the subsumes predicate on canonical transformer strings and of
// the CollapseSubsumedPts solver extension (the optimization Section 8
// proposes: "whenever a fact pts(y,h,∗·ĉ) is derived, facts
// pts(y,h,X·∗·ĉ) may be deleted ... without affecting the derivation of
// facts through feasible data-flow paths").
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "ctx/Semantics.h"
#include "ctx/TransformerString.h"
#include "facts/Extract.h"
#include "support/Rng.h"
#include "workload/Generator.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::ctx;
using ctx::Abstraction;

namespace {

Transformer make(std::initializer_list<CtxtElem> Exits, bool Wild,
                 std::initializer_list<CtxtElem> Entries) {
  Transformer T;
  for (CtxtElem E : Exits)
    T.Exits.push_back(E);
  T.Wild = Wild;
  for (CtxtElem E : Entries)
    T.Entries.push_back(E);
  return T;
}

TEST(SubsumesTest, WildcardSubsumesEverything) {
  Transformer Star = make({}, true, {});
  EXPECT_TRUE(subsumes(Star, make({1}, false, {2})));
  EXPECT_TRUE(subsumes(Star, make({}, false, {})));
  EXPECT_TRUE(subsumes(Star, make({1, 2}, true, {3})));
  EXPECT_FALSE(subsumes(Star, Star)); // Strict.
}

TEST(SubsumesTest, PaperSection8Examples) {
  // pts(X,H,M̌1·∗) and pts(X,H,∗·M̂2) subsume pts(X,H,M̌1·∗·M̂2).
  Transformer A1 = make({1}, true, {});
  Transformer A2 = make({}, true, {2});
  Transformer B = make({1}, true, {2});
  EXPECT_TRUE(subsumes(A1, B));
  EXPECT_TRUE(subsumes(A2, B));
  EXPECT_FALSE(subsumes(B, A1));
  EXPECT_FALSE(subsumes(B, A2));
}

TEST(SubsumesTest, EpsilonSubsumesPrefixFilters) {
  // Figure 7: ε subsumes č1·ĉ1.
  Transformer Eps = Transformer::identity();
  Transformer Filter = make({7}, false, {7});
  EXPECT_TRUE(subsumes(Eps, Filter));
  EXPECT_FALSE(subsumes(Filter, Eps));
  // But ε does not subsume an exit or an entry alone.
  EXPECT_FALSE(subsumes(Eps, make({7}, false, {})));
  EXPECT_FALSE(subsumes(Eps, make({}, false, {7})));
  // Nor a mismatched filter.
  EXPECT_FALSE(subsumes(Eps, make({7}, false, {8})));
}

TEST(SubsumesTest, ExactNeverSubsumesWild) {
  EXPECT_FALSE(subsumes(Transformer::identity(), make({}, true, {})));
}

TEST(SubsumesTest, AgreesWithSemantics) {
  // Property: subsumes(A,B) implies image containment on sampled inputs.
  Rng R(2024);
  auto Random = [&R]() {
    Transformer T;
    unsigned NE = static_cast<unsigned>(R.nextBelow(3));
    unsigned NN = static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I < NE; ++I)
      T.Exits.push_back(static_cast<CtxtElem>(R.nextBelow(2)));
    T.Wild = R.chancePercent(40);
    for (unsigned I = 0; I < NN; ++I)
      T.Entries.push_back(static_cast<CtxtElem>(R.nextBelow(2)));
    return T;
  };
  for (int Trial = 0; Trial < 500; ++Trial) {
    Transformer A = Random(), B = Random();
    if (!subsumes(A, B))
      continue;
    for (int K = 0; K < 10; ++K) {
      ConcreteCtxt M;
      unsigned Len = static_cast<unsigned>(R.nextBelow(5));
      for (unsigned I = 0; I < Len; ++I)
        M.push_back(static_cast<CtxtElem>(R.nextBelow(2)));
      EXPECT_TRUE(prefixSetSubset(applyTransformer(B, M),
                                  applyTransformer(A, M)))
          << printTransformer(A) << " vs " << printTransformer(B);
    }
  }
}

TEST(CollapseTest, Figure7CollapsesToOneFact) {
  workload::Figure7Program F = workload::figure7();
  facts::FactDB DB = facts::extract(F.P);
  analysis::SolverOptions Opts;
  Opts.CollapseSubsumedPts = true;
  analysis::Results R = analysis::solve(
      DB, ctx::oneCallH(Abstraction::TransformerString), Opts);
  std::size_t VFacts = 0;
  for (const auto &P : R.Pts)
    if (P.Var == F.V && P.Heap == F.H1)
      ++VFacts;
  // Without collapsing: ε and č1·ĉ1. The latter is retired.
  EXPECT_EQ(VFacts, 1u);
  EXPECT_GE(R.Stat.CollapsedPts, 1u);
}

TEST(CollapseTest, NoEffectOnContextStrings) {
  facts::FactDB DB = facts::extract(workload::figure7().P);
  analysis::SolverOptions Opts;
  Opts.CollapseSubsumedPts = true;
  analysis::Results A = analysis::solve(
      DB, ctx::oneCallH(Abstraction::ContextString), Opts);
  analysis::Results B =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  EXPECT_EQ(A.Stat.NumPts, B.Stat.NumPts);
  EXPECT_EQ(A.Stat.CollapsedPts, 0u);
}

struct CollapseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapseProperty, SoundAndNeverLarger) {
  workload::WorkloadParams Params;
  Params.DataClasses = 3;
  Params.WrapperChains = 2;
  Params.Factories = 2;
  Params.Containers = 2;
  Params.PolyBases = 1;
  Params.Drivers = 3;
  Params.Scenarios = 5;
  Params.PrivateScenarios = 4;
  Params.AstScenarios = 2;
  Params.Seed = GetParam();
  facts::FactDB DB = facts::extract(workload::generate(Params));

  analysis::SolverOptions Opts;
  Opts.CollapseSubsumedPts = true;
  for (auto MakeCfg :
       {ctx::oneCall, ctx::oneCallH, ctx::oneObject, ctx::twoObjectH}) {
    ctx::Config Cfg = MakeCfg(Abstraction::TransformerString);
    analysis::Results Full = analysis::solve(DB, Cfg);
    analysis::Results Col = analysis::solve(DB, Cfg, Opts);

    // Collapsing never grows the relation and keeps it sound: the CI
    // projection still covers everything the context-string analysis
    // derives (which both transformer variants matched empirically).
    EXPECT_LE(Col.Stat.NumPts, Full.Stat.NumPts) << Cfg.name();
    auto FullCi = Full.ciPts();
    auto ColCi = Col.ciPts();
    EXPECT_TRUE(std::includes(FullCi.begin(), FullCi.end(), ColCi.begin(),
                              ColCi.end()))
        << Cfg.name();
    analysis::Results Cs =
        analysis::solve(DB, MakeCfg(Abstraction::ContextString));
    auto CsCi = Cs.ciPts();
    EXPECT_TRUE(std::includes(ColCi.begin(), ColCi.end(), CsCi.begin(),
                              CsCi.end()))
        << Cfg.name() << ": collapsed result lost a fact the "
        << "context-string baseline derives";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseProperty,
                         ::testing::Values(5u, 6u, 7u, 8u));

} // namespace
