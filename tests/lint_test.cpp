//===- tests/lint_test.cpp - Checker-suite and diagnostics tests ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Covers the points-to-powered checker suite: escape analysis, the
// race-candidate detector, cast safety, the shared diagnostics layer
// (stable ids, deterministic ordering, SARIF rendering), and the headline
// soundness property — warning sets shrink monotonically as context
// precision increases, verified against BOTH solver back-ends.
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "clients/CastSafety.h"
#include "clients/Diagnostics.h"
#include "clients/Escape.h"
#include "clients/RaceCandidates.h"
#include "clients/Taint.h"
#include "facts/Extract.h"
#include "ir/Builder.h"
#include "ctx/Config.h"
#include "support/ExitCodes.h"
#include "support/Suggest.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;

namespace {

analysis::Results solveBoth(const facts::FactDB &DB, const ctx::Config &Cfg,
                            bool UseDatalog) {
  if (UseDatalog)
    return analysis::solveViaDatalog(DB, Cfg);
  return analysis::solve(DB, Cfg);
}

/// Runs the full checker suite and returns the finalized report.
clients::Report lintAll(const facts::FactDB &DB, const analysis::Results &R) {
  clients::SourceMap SM(DB);
  clients::Report Rep;
  clients::checkEscape(DB, R, SM, Rep);
  clients::checkRaces(DB, R, SM, Rep);
  clients::checkCastSafety(DB, R, SM, Rep);
  clients::checkTaint(DB, R, SM, Rep);
  Rep.finalize();
  return Rep;
}

//===----------------------------------------------------------------------===//
// Escape analysis
//===----------------------------------------------------------------------===//

TEST(EscapeTest, ClassifiesGlobalReturnAndThreadEscapes) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Data = B.addClass("Data", Obj);
  TypeId Worker = B.addClass("Worker", Obj);
  FieldId Held = B.addField("held");
  GlobalId Cache = B.addGlobal("cache");

  // Worker.run(p) captures its argument into a field.
  MethodId Run = B.addMethod(Worker, "run", 1);
  B.addStore(Run, B.thisVar(Run), Held, B.formal(Run, 0));
  SigId RunSig = B.signature("run", 1);

  // factory() returns a fresh object.
  MethodId Factory = B.addStaticMethod(Obj, "factory", 0);
  VarId F = B.addLocal(Factory, "f");
  B.addNew(Factory, F, Data, "h_returned");
  B.addReturn(Factory, F);

  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  // h_global is published through a static.
  VarId G = B.addLocal(Main, "g");
  B.addNew(Main, G, Data, "h_global");
  B.addGlobalStore(Main, Cache, G);
  // h_arg crosses a thread boundary; the worker object does too.
  VarId A = B.addLocal(Main, "a");
  B.addNew(Main, A, Data, "h_arg");
  VarId W = B.addLocal(Main, "w");
  B.addNew(Main, W, Worker, "h_worker");
  B.addSpawnCall(Main, W, RunSig, {A}, "spawn0");
  // h_local never leaves main.
  VarId L = B.addLocal(Main, "l");
  B.addNew(Main, L, Data, "h_local");
  VarId R = B.addLocal(Main, "r");
  B.addStaticCall(Main, Factory, {}, R, "call_factory");

  facts::FactDB DB = facts::extract(B.take());
  analysis::Results Res =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
  clients::EscapeInfo Info = clients::computeEscape(DB, Res);

  std::map<std::string, facts::Id> Heap;
  for (facts::Id H = 0; H < DB.numHeaps(); ++H)
    Heap[DB.HeapNames[H]] = H;

  EXPECT_EQ(Info.Mask[Heap["h_global"]], clients::GlobalEscape);
  EXPECT_EQ(Info.Mask[Heap["h_returned"]], clients::ReturnEscape);
  EXPECT_EQ(Info.Mask[Heap["h_arg"]], clients::ThreadEscape);
  EXPECT_EQ(Info.Mask[Heap["h_worker"]], clients::ThreadEscape);
  EXPECT_EQ(Info.Mask[Heap["h_local"]], clients::NoEscape);
  // The program spawns, so global-escaping objects are thread-shared too.
  EXPECT_TRUE(Info.HasSpawns);
  EXPECT_TRUE(Info.ThreadShared[Heap["h_global"]]);
  EXPECT_TRUE(Info.ThreadShared[Heap["h_arg"]]);
  EXPECT_FALSE(Info.ThreadShared[Heap["h_local"]]);
  EXPECT_FALSE(Info.ThreadShared[Heap["h_returned"]]);
}

TEST(EscapeTest, EscapePropagatesThroughFieldsOfEscapingObjects) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Box = B.addClass("Box", Obj);
  TypeId Data = B.addClass("Data", Obj);
  FieldId Item = B.addField("item");
  GlobalId Pub = B.addGlobal("pub");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId Bx = B.addLocal(Main, "bx");
  B.addNew(Main, Bx, Box, "h_box");
  VarId In = B.addLocal(Main, "in");
  B.addNew(Main, In, Data, "h_inner");
  B.addStore(Main, Bx, Item, In);  // h_box.item = h_inner
  B.addGlobalStore(Main, Pub, Bx); // then the box escapes

  facts::FactDB DB = facts::extract(B.take());
  analysis::Results Res =
      analysis::solve(DB, ctx::oneObject(Abstraction::TransformerString));
  clients::EscapeInfo Info = clients::computeEscape(DB, Res);
  std::map<std::string, facts::Id> Heap;
  for (facts::Id H = 0; H < DB.numHeaps(); ++H)
    Heap[DB.HeapNames[H]] = H;
  // Stored into an escaping container => escapes with it.
  EXPECT_EQ(Info.Mask[Heap["h_inner"]], clients::GlobalEscape);
  // No spawn anywhere: nothing is thread-shared.
  EXPECT_FALSE(Info.HasSpawns);
  EXPECT_FALSE(Info.ThreadShared[Heap["h_inner"]]);
}

//===----------------------------------------------------------------------===//
// Race candidates
//===----------------------------------------------------------------------===//

/// Driver writes and reads field 'val' of an object it also hands to a
/// spawned worker that writes the same field: a genuine candidate pair.
ir::Program raceProgram(bool WithSpawn) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Data = B.addClass("Data", Obj);
  TypeId Worker = B.addClass("Worker", Obj);
  FieldId Val = B.addField("val");
  MethodId Run = B.addMethod(Worker, "run", 1);
  VarId P = B.formal(Run, 0);
  VarId Fresh = B.addLocal(Run, "fresh");
  B.addNew(Run, Fresh, Data, "h_fresh");
  B.addStore(Run, P, Val, Fresh); // write on the worker thread
  SigId RunSig = B.signature("run", 1);

  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId S = B.addLocal(Main, "s");
  B.addNew(Main, S, Data, "h_shared");
  VarId W = B.addLocal(Main, "w");
  B.addNew(Main, W, Worker, "h_worker");
  if (WithSpawn)
    B.addSpawnCall(Main, W, RunSig, {S}, "spawn0");
  else
    B.addVirtualCall(Main, W, RunSig, {S}, InvalidId, "call0");
  VarId Seen = B.addLocal(Main, "seen");
  B.addLoad(Main, Seen, S, Val); // read on the main thread
  return B.take();
}

TEST(RaceTest, SpawnedWriterRacesWithMainThreadReader) {
  facts::FactDB DB = facts::extract(raceProgram(/*WithSpawn=*/true));
  analysis::Results R =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
  clients::RaceSummary S = clients::findRaceCandidates(DB, R);
  EXPECT_EQ(S.ThreadEntries, 1u);
  EXPECT_GE(S.ConcurrentMethods, 1u);
  ASSERT_EQ(S.Candidates.size(), 1u);
  const clients::RaceCandidate &C = S.Candidates[0];
  EXPECT_EQ(DB.FieldNames[C.Field], "val");
  EXPECT_EQ(DB.HeapNames[C.Heap], "h_shared");
  EXPECT_EQ(DB.MethodNames[C.WriteMethod], "Worker.run");
  EXPECT_FALSE(C.OtherIsWrite); // paired with main's read
}

TEST(RaceTest, NoSpawnMeansNoCandidates) {
  // Same data flow through an ordinary virtual call: single-threaded,
  // so the same write/read pair is not a race.
  facts::FactDB DB = facts::extract(raceProgram(/*WithSpawn=*/false));
  analysis::Results R =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
  clients::RaceSummary S = clients::findRaceCandidates(DB, R);
  EXPECT_EQ(S.ThreadEntries, 0u);
  EXPECT_TRUE(S.Candidates.empty());
}

TEST(RaceTest, ThreadLocalObjectsArePruned) {
  // The worker's own fresh allocation never crosses a thread boundary;
  // stores to ITS fields must not be reported even though the method is
  // concurrent.
  facts::FactDB DB = facts::extract(raceProgram(/*WithSpawn=*/true));
  analysis::Results R =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
  clients::RaceSummary S = clients::findRaceCandidates(DB, R);
  for (const clients::RaceCandidate &C : S.Candidates)
    EXPECT_NE(DB.HeapNames[C.Heap], "h_fresh");
}

//===----------------------------------------------------------------------===//
// Cast safety
//===----------------------------------------------------------------------===//

TEST(CastSafetyTest, ProvesSafeFlagsUnsafeNotesUnreachable) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Base = B.addClass("Base", Obj);
  TypeId Sub = B.addClass("Sub", Base);
  TypeId Other = B.addClass("Other", Obj);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  // Safe: only Sub objects flow into a (Sub) cast.
  VarId A = B.addLocal(Main, "a");
  B.addNew(Main, A, Sub, "h_sub");
  VarId A2 = B.addLocal(Main, "a2");
  B.addCast(Main, A2, Sub, A);
  // Unsafe: an Other object flows into a (Base) cast.
  VarId C = B.addLocal(Main, "c");
  B.addNew(Main, C, Other, "h_other");
  VarId Mix = B.addLocal(Main, "mix");
  B.addAssign(Main, Mix, A);
  B.addAssign(Main, Mix, C);
  VarId M2 = B.addLocal(Main, "m2");
  B.addCast(Main, M2, Base, Mix);
  // Unreachable: the casting method is never called.
  MethodId Dead = B.addStaticMethod(Obj, "dead", 1);
  VarId D2 = B.addLocal(Dead, "d2");
  B.addCast(Dead, D2, Sub, B.formal(Dead, 0));

  facts::FactDB DB = facts::extract(B.take());
  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::TransformerString));
  clients::CastSummary S = clients::checkCasts(DB, R);
  EXPECT_EQ(S.Safe, 1u);
  EXPECT_EQ(S.Unsafe, 1u);
  EXPECT_EQ(S.Unreachable, 1u);
  ASSERT_EQ(S.PerCast.size(), 3u);
  const clients::CastResult &Bad = S.PerCast[1];
  EXPECT_EQ(Bad.Verdict, clients::CastVerdict::Unsafe);
  EXPECT_EQ(Bad.NumPointees, 2u);
  EXPECT_EQ(Bad.NumIllTyped, 1u);
  EXPECT_EQ(DB.HeapNames[Bad.WitnessHeap], "h_other");
}

//===----------------------------------------------------------------------===//
// Taint checker
//===----------------------------------------------------------------------===//

/// One secret flows straight into a sink, one is laundered through a
/// fresh-copy sanitizer first, and a third source's value never reaches
/// any sink.
TEST(TaintTest, DirectFlowWarnsSanitizedFlowIsQuietDeadSourceNoted) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Secret = B.addClass("Secret", Obj);
  MethodId Read = B.addStaticMethod(Obj, "read", 0);
  VarId RV = B.addLocal(Read, "rv");
  B.addNew(Read, RV, Secret, "h_secret");
  B.addReturn(Read, RV);
  MethodId Clean = B.addStaticMethod(Obj, "clean", 1);
  VarId CV = B.addLocal(Clean, "cv");
  B.addNew(Clean, CV, Secret, "h_copy");
  B.addReturn(Clean, CV);
  MethodId Probe = B.addStaticMethod(Obj, "probe", 0);
  VarId PV = B.addLocal(Probe, "pv");
  B.addNew(Probe, PV, Secret, "h_unused");
  B.addReturn(Probe, PV);
  MethodId Consume = B.addStaticMethod(Obj, "consume", 1);

  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId T = B.addLocal(Main, "t");
  InvokeId SrcDirect = B.addStaticCall(Main, Read, {}, T, "src_direct");
  B.setInvokeTaint(SrcDirect, TaintAnnot::Source);
  InvokeId SinkHot = B.addStaticCall(Main, Consume, {T}, InvalidId, "sink_hot");
  B.setInvokeTaint(SinkHot, TaintAnnot::Sink);
  VarId S = B.addLocal(Main, "s");
  InvokeId SrcSanit = B.addStaticCall(Main, Read, {}, S, "src_sanitized");
  B.setInvokeTaint(SrcSanit, TaintAnnot::Source);
  VarId C = B.addLocal(Main, "c");
  InvokeId Cleanse = B.addStaticCall(Main, Clean, {S}, C, "cleanse");
  B.setInvokeTaint(Cleanse, TaintAnnot::Sanitizer);
  InvokeId SinkCold =
      B.addStaticCall(Main, Consume, {C}, InvalidId, "sink_cold");
  B.setInvokeTaint(SinkCold, TaintAnnot::Sink);
  VarId D = B.addLocal(Main, "d");
  InvokeId SrcDead = B.addStaticCall(Main, Probe, {}, D, "src_dead");
  B.setInvokeTaint(SrcDead, TaintAnnot::Source);

  facts::FactDB DB = facts::extract(B.take());
  analysis::Results R =
      analysis::solve(DB, ctx::insensitive(Abstraction::TransformerString));
  clients::SourceMap SM(DB);
  clients::Report Rep;
  std::map<std::string, clients::TaintEndpoint> EPs;
  clients::checkTaint(DB, R, SM, Rep, &EPs);
  Rep.finalize();

  std::vector<const clients::Finding *> Flows, Dead;
  for (const clients::Finding &F : Rep.findings()) {
    if (F.RuleId == "taint.flow")
      Flows.push_back(&F);
    else if (F.RuleId == "taint.dead-source")
      Dead.push_back(&F);
  }
  // Exactly the direct flow warns; the laundered copy h_copy is clean.
  ASSERT_EQ(Flows.size(), 1u);
  EXPECT_NE(Flows[0]->Message.find("'h_secret'"), std::string::npos);
  EXPECT_NE(Flows[0]->Message.find("'sink_hot'"), std::string::npos);
  ASSERT_GE(Flows[0]->Witness.size(), 2u);
  EXPECT_NE(Flows[0]->Witness.front().Note.find("source call"),
            std::string::npos);
  EXPECT_NE(Flows[0]->Witness.back().Note.find("sink call"),
            std::string::npos);
  // The endpoint side-table names main's 't' on both ends (the sink
  // actual is itself the source call's result).
  ASSERT_EQ(EPs.count(Flows[0]->Id), 1u);
  const clients::TaintEndpoint &EP = EPs.at(Flows[0]->Id);
  EXPECT_EQ(DB.VarNames[EP.SinkVar], "Object.main/t");
  EXPECT_EQ(DB.VarNames[EP.SourceVar], "Object.main/t");
  EXPECT_EQ(DB.HeapNames[EP.Heap], "h_secret");
  // Only probe's value reaches no sink; the laundered source still fed
  // h_secret, which DID reach a sink elsewhere.
  ASSERT_EQ(Dead.size(), 1u);
  EXPECT_NE(Dead[0]->Message.find("'src_dead'"), std::string::npos);
}

/// The headline taint property on real workloads: 2-object+H taint.flow
/// warnings are a strict subset of the insensitive ones, per preset, per
/// back-end.
class TaintSubset
    : public ::testing::TestWithParam<std::tuple<const char *, bool>> {};

TEST_P(TaintSubset, TwoObjectTaintWarningsAreStrictSubsetOfInsensitive) {
  const char *Preset = std::get<0>(GetParam());
  const bool UseDatalog = std::get<1>(GetParam());
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  auto Ids = [&](const ctx::Config &Cfg) {
    analysis::Results R = solveBoth(DB, Cfg, UseDatalog);
    clients::Report Rep = lintAll(DB, R);
    std::set<std::string> Out;
    for (const clients::Finding &F : Rep.findings())
      if (F.RuleId == "taint.flow")
        Out.insert(F.Id);
    return Out;
  };
  std::set<std::string> Coarse =
      Ids(ctx::insensitive(Abstraction::TransformerString));
  std::set<std::string> Fine =
      Ids(ctx::twoObjectH(Abstraction::TransformerString));
  EXPECT_FALSE(Fine.empty());
  for (const std::string &Id : Fine)
    EXPECT_TRUE(Coarse.count(Id)) << "taint.flow " << Id
                                  << " appears only at 2-object+H";
  // Context sensitivity genuinely prunes container false positives here.
  EXPECT_LT(Fine.size(), Coarse.size());
}

INSTANTIATE_TEST_SUITE_P(
    PresetsAndEngines, TaintSubset,
    ::testing::Combine(::testing::Values("luindex", "pmd"),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<std::tuple<const char *, bool>> &Info) {
      return std::string(std::get<0>(Info.param)) +
             (std::get<1>(Info.param) ? "_Datalog" : "_Specialized");
    });

/// Witness replay: every step of every taint.flow witness anchors a ctp/
/// pseudo-file and names only entities that exist in the fact base, both
/// endpoints' variables really point to the tainted heap, and their
/// context transformations compose — there is a pair (Ts, Tk) with
/// pts(Source, H, Ts), pts(Sink, H, Tk) and comp(inv(Ts), Tk) defined,
/// i.e. one concrete execution context reaches both ends.
TEST(TaintWitnessTest, StepsNameRealEntitiesAndEndpointContextsCompose) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::Results R =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
  clients::SourceMap SM(DB);
  clients::Report Rep;
  std::map<std::string, clients::TaintEndpoint> EPs;
  clients::checkTaint(DB, R, SM, Rep, &EPs);
  Rep.finalize();

  std::set<std::string> Known;
  for (const auto *Names :
       {&DB.VarNames, &DB.HeapNames, &DB.MethodNames, &DB.InvokeNames,
        &DB.FieldNames, &DB.GlobalNames})
    Known.insert(Names->begin(), Names->end());
  // Names quoted in a step's prose, with any trailing "[ctx ...]"
  // annotation stripped first (it prints context elements, not entities).
  auto QuotedNames = [](std::string Note) {
    std::size_t Ctx = Note.find(" [ctx ");
    if (Ctx != std::string::npos)
      Note.resize(Ctx);
    std::vector<std::string> Out;
    for (std::size_t P = Note.find('\''); P != std::string::npos;) {
      std::size_t E = Note.find('\'', P + 1);
      if (E == std::string::npos)
        break;
      Out.push_back(Note.substr(P + 1, E - P - 1));
      P = Note.find('\'', E + 1);
    }
    return Out;
  };

  const auto Pts = R.ciPts();
  auto Holds = [&](facts::Id V, facts::Id H) {
    return std::binary_search(Pts.begin(), Pts.end(),
                              std::array<std::uint32_t, 2>{V, H});
  };

  std::size_t Flows = 0;
  for (const clients::Finding &F : Rep.findings()) {
    if (F.RuleId != "taint.flow")
      continue;
    ++Flows;
    ASSERT_GE(F.Witness.size(), 2u);
    for (const clients::WitnessStep &S : F.Witness) {
      EXPECT_EQ(S.Loc.Uri.rfind("ctp/", 0), 0u) << S.Loc.Uri;
      EXPECT_GE(S.Loc.Line, 1u);
      for (const std::string &Name : QuotedNames(S.Note))
        EXPECT_TRUE(Known.count(Name))
            << "witness step names unknown entity '" << Name
            << "' in: " << S.Note;
    }
    ASSERT_EQ(EPs.count(F.Id), 1u) << F.Id;
    const clients::TaintEndpoint &EP = EPs.at(F.Id);
    ASSERT_NE(EP.SinkVar, facts::InvalidId);
    ASSERT_NE(EP.SourceVar, facts::InvalidId);
    ASSERT_NE(EP.Heap, facts::InvalidId);
    EXPECT_TRUE(Holds(EP.SinkVar, EP.Heap));
    EXPECT_TRUE(Holds(EP.SourceVar, EP.Heap));
    std::vector<ctx::TransformId> Ts, Tk;
    for (const analysis::PtsFact &P : R.Pts) {
      if (P.Heap != EP.Heap)
        continue;
      if (P.Var == EP.SourceVar)
        Ts.push_back(P.T);
      if (P.Var == EP.SinkVar)
        Tk.push_back(P.T);
    }
    bool Composes = false;
    for (ctx::TransformId A : Ts)
      for (ctx::TransformId Bt : Tk)
        if (R.Dom->comp(R.Dom->inv(A), Bt, 16, 16)) {
          Composes = true;
          break;
        }
    EXPECT_TRUE(Composes) << "endpoint contexts never compose for " << F.Id;
  }
  EXPECT_GT(Flows, 0u);
}

//===----------------------------------------------------------------------===//
// Diagnostics layer
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, FindingsSortDedupeAndKeepStableIds) {
  clients::Report Rep;
  clients::Location L1{"ctp/B.java", 3}, L2{"ctp/A.java", 7};
  Rep.add("zz.rule", clients::Severity::Warning, L1, "later rule", "k1");
  Rep.add("aa.rule", clients::Severity::Note, L2, "earlier rule", "k2");
  Rep.add("zz.rule", clients::Severity::Warning, L1, "later rule", "k1");
  Rep.finalize();
  ASSERT_EQ(Rep.findings().size(), 2u); // exact duplicate dropped
  EXPECT_EQ(Rep.findings()[0].RuleId, "aa.rule");
  EXPECT_EQ(Rep.findings()[1].RuleId, "zz.rule");
  EXPECT_EQ(Rep.findings()[0].Id.size(), 16u);
  // Same (rule, key) => same id; different key => different id.
  clients::Report Rep2;
  Rep2.add("zz.rule", clients::Severity::Warning, L2, "moved", "k1");
  Rep2.add("zz.rule", clients::Severity::Warning, L1, "later rule", "k9");
  Rep2.finalize();
  EXPECT_EQ(Rep2.findings()[0].Id, Rep.findings()[1].Id);
  EXPECT_NE(Rep2.findings()[1].Id, Rep.findings()[1].Id);
  EXPECT_EQ(Rep.countAtLeast(clients::Severity::Warning), 1u);
}

TEST(DiagnosticsTest, SarifIsByteDeterministicAcrossIndependentRuns) {
  auto Render = [] {
    facts::FactDB DB = facts::extract(workload::generatePreset("pmd"));
    analysis::Results R =
        analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
    return lintAll(DB, R).renderSarif("ctp-lint", "1.0.0");
  };
  std::string S1 = Render(), S2 = Render();
  EXPECT_FALSE(S1.empty());
  EXPECT_EQ(S1, S2); // full pipeline twice, byte-identical
}

TEST(DiagnosticsTest, SarifStructureIsWellFormed) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::TransformerString));
  clients::Report Rep = lintAll(DB, R);
  std::string S = Rep.renderSarif("ctp-lint", "1.0.0");
  EXPECT_NE(S.find("\"$schema\": "
                   "\"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(S.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(S.find("\"name\": \"ctp-lint\""), std::string::npos);
  // Every rule the suite can emit is declared in the rule table.
  for (const clients::RuleInfo &RI : clients::allRules())
    EXPECT_NE(S.find("\"id\": \"" + std::string(RI.Id) + "\""),
              std::string::npos)
        << RI.Id;
  // One "ruleId" entry per finding.
  std::size_t Count = 0;
  for (std::size_t Pos = S.find("\"ruleId\""); Pos != std::string::npos;
       Pos = S.find("\"ruleId\"", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, Rep.findings().size());
  EXPECT_GT(Count, 0u);
}

TEST(DiagnosticsTest, SarifCodeFlowsAreStructurallyValidForEveryChecker) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::Results R =
      analysis::solve(DB, ctx::insensitive(Abstraction::TransformerString));
  clients::Report Rep = lintAll(DB, R);
  std::string S = Rep.renderSarif("ctp-lint", "1.0.0");

  // Every checker family contributed findings, so the codeFlow checks
  // below exercise all of them.
  for (const char *Family : {"escape.", "race.", "cast.", "taint."}) {
    bool Fired = false;
    for (const clients::Finding &F : Rep.findings())
      Fired = Fired || F.RuleId.rfind(Family, 0) == 0;
    EXPECT_TRUE(Fired) << Family;
  }

  auto Count = [&](const std::string &Key) {
    std::size_t N = 0;
    for (std::size_t P = S.find(Key); P != std::string::npos;
         P = S.find(Key, P + 1))
      ++N;
    return N;
  };
  // Exactly one codeFlow holding one threadFlow per result, and every
  // result keeps its fingerprints.
  EXPECT_EQ(Count("\"codeFlows\""), Rep.findings().size());
  EXPECT_EQ(Count("\"threadFlows\""), Rep.findings().size());
  EXPECT_EQ(Count("\"partialFingerprints\""), Rep.findings().size());
  // One threadFlowLocation per witness step across the whole report.
  std::size_t Steps = 0;
  for (const clients::Finding &F : Rep.findings())
    Steps += F.Witness.size();
  EXPECT_EQ(Count("\"executionOrder\""), Steps);

  // Within each threadFlow, executionOrder counts 0, 1, 2, ...
  long Expected = 0;
  for (std::size_t P = 0;;) {
    std::size_t TF = S.find("\"threadFlows\"", P);
    std::size_t EO = S.find("\"executionOrder\": ", P);
    if (EO == std::string::npos)
      break;
    if (TF != std::string::npos && TF < EO) {
      Expected = 0;
      P = TF + 1;
      continue;
    }
    long Got = std::stol(S.substr(EO + 18));
    EXPECT_EQ(Got, Expected) << "at offset " << EO;
    ++Expected;
    P = EO + 1;
  }

  // Every artifact URI is one of the ctp/ pseudo-files.
  for (std::size_t P = S.find("\"uri\": \""); P != std::string::npos;
       P = S.find("\"uri\": \"", P + 1)) {
    std::size_t V = P + 8;
    std::size_t E = S.find('"', V);
    ASSERT_NE(E, std::string::npos);
    std::string Uri = S.substr(V, E - V);
    EXPECT_EQ(Uri.rfind("ctp/", 0), 0u) << Uri;
    EXPECT_EQ(Uri.rfind(".java"), Uri.size() - 5) << Uri;
  }
}

TEST(DiagnosticsTest, SarifIsByteIdenticalAcrossBackEnds) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  auto Render = [&](bool UseDatalog) {
    analysis::Results R = solveBoth(
        DB, ctx::twoObjectH(Abstraction::TransformerString), UseDatalog);
    return lintAll(DB, R).renderSarif("ctp-lint", "1.0.0");
  };
  std::string Native = Render(false), Datalog = Render(true);
  EXPECT_FALSE(Native.empty());
  // Same fixpoint, same projections, same witness rendering: the two
  // back-ends must agree to the byte.
  EXPECT_EQ(Native, Datalog);
}

TEST(DiagnosticsTest, ExplainRoundTripsEveryFindingId) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::TransformerString));
  clients::Report Rep = lintAll(DB, R);
  EXPECT_FALSE(Rep.findings().empty());
  for (const clients::Finding &F : Rep.findings()) {
    ASSERT_EQ(Rep.findById(F.Id), &F);
    std::string E = Rep.renderExplain(F.Id);
    ASSERT_FALSE(E.empty()) << F.Id;
    EXPECT_NE(E.find(F.RuleId), std::string::npos) << F.Id;
    EXPECT_NE(E.find("witness ("), std::string::npos) << F.Id;
  }
  EXPECT_TRUE(Rep.renderExplain("0000000000000000").empty());
}

//===----------------------------------------------------------------------===//
// Exit-code protocol
//===----------------------------------------------------------------------===//

TEST(ExitCodeTest, DegradedTakesPrecedenceOverWarnings) {
  EXPECT_EQ(lintExitCode(false, false), ExitOk);
  EXPECT_EQ(lintExitCode(false, true), ExitFindings);
  EXPECT_EQ(lintExitCode(true, false), ExitDegraded);
  // The contested case: a degraded run with warnings reports 3, not 4 —
  // its findings may be incomplete, so "re-run me" is the signal.
  EXPECT_EQ(lintExitCode(true, true), ExitDegraded);
}

//===----------------------------------------------------------------------===//
// The headline property: warning sets shrink as precision rises, on both
// solver back-ends. (Note-severity findings are exempt: cast.unreachable
// GROWS with precision by design — refuting all pointees of a cast makes
// it unreachable.)
//===----------------------------------------------------------------------===//

class SubsetProperty : public ::testing::TestWithParam<bool> {};

TEST_P(SubsetProperty, TwoObjectWarningsAreSubsetOfInsensitive) {
  const bool UseDatalog = GetParam();
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::Results Coarse = solveBoth(
      DB, ctx::insensitive(Abstraction::TransformerString), UseDatalog);
  analysis::Results Fine = solveBoth(
      DB, ctx::twoObjectH(Abstraction::TransformerString), UseDatalog);

  // Key findings by (rule, stable id): location-independent identity.
  auto Warnings = [](const clients::Report &Rep) {
    std::map<std::string, std::set<std::string>> PerRule;
    for (const clients::Finding &F : Rep.findings())
      if (F.Sev >= clients::Severity::Warning)
        PerRule[F.RuleId].insert(F.Id);
    return PerRule;
  };
  auto CoarseW = Warnings(lintAll(DB, Coarse));
  auto FineW = Warnings(lintAll(DB, Fine));

  // Each checker's warning rules must have fired insensitively, or the
  // subset claim below would be vacuous.
  for (const char *Rule :
       {"escape.global", "escape.thread", "race.candidate", "cast.unsafe"})
    EXPECT_FALSE(CoarseW[Rule].empty()) << Rule;

  // Per rule: 2-object+H warnings are a subset of insensitive warnings.
  std::size_t CoarseTotal = 0, FineTotal = 0;
  for (const auto &[Rule, Ids] : FineW) {
    const std::set<std::string> &CoarseIds = CoarseW[Rule];
    for (const std::string &Id : Ids)
      EXPECT_TRUE(CoarseIds.count(Id)) << Rule << " finding " << Id
                                       << " appears only at 2-object+H";
  }
  for (const auto &[Rule, Ids] : CoarseW)
    CoarseTotal += Ids.size();
  for (const auto &[Rule, Ids] : FineW)
    FineTotal += Ids.size();
  // And precision genuinely prunes something on this workload.
  EXPECT_LT(FineTotal, CoarseTotal);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SubsetProperty,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "Datalog" : "Specialized";
                         });

//===----------------------------------------------------------------------===//
// Did-you-mean diagnostics: every tool that takes a closed vocabulary
// (--config, --checks, --preset) rejects unknown values with the closest
// known one suggested. The suggestion logic is shared (support/Suggest.h)
// so the tools cannot drift in what "close" means.
//===----------------------------------------------------------------------===//

TEST(DidYouMeanTest, SuggestsClosestVocabularyEntry) {
  // The motivating typos: each one letter or one token off.
  EXPECT_EQ(support::didYouMean("2-object", ctx::configNames()),
            " (did you mean '1-object'?)");
  EXPECT_EQ(support::didYouMean("1-objcet", ctx::configNames()),
            " (did you mean '1-object'?)");
  EXPECT_EQ(support::didYouMean("insensitve", ctx::configNames()),
            " (did you mean 'insensitive'?)");
  EXPECT_EQ(support::didYouMean("tain", {"escape", "race", "cast", "taint",
                                         "all"}),
            " (did you mean 'taint'?)");
  EXPECT_EQ(support::didYouMean("antlrr", workload::presetNames()),
            " (did you mean 'antlr'?)");
}

TEST(DidYouMeanTest, SuggestsContextlessFlavourNames) {
  // The contextless rungs are in every tool's --config vocabulary: a
  // near-miss for either flavour must land on the right name, through
  // the same closestMatch every tool calls.
  EXPECT_EQ(support::didYouMean("unifyy", ctx::configNames()),
            " (did you mean 'unify'?)");
  EXPECT_EQ(support::didYouMean("unfiy", ctx::configNames()),
            " (did you mean 'unify'?)");
  EXPECT_EQ(support::didYouMean("cutshortcu", ctx::configNames()),
            " (did you mean 'cutshortcut'?)");
  EXPECT_EQ(support::didYouMean("cut-shortcut", ctx::configNames()),
            " (did you mean 'cutshortcut'?)");
  // ctp-genfacts' flag vocabulary (the last tool to gain suggestions).
  EXPECT_EQ(support::didYouMean("--sede", {"--seed", "--print-program"}),
            " (did you mean '--seed'?)");
  EXPECT_EQ(support::didYouMean("--print-prog",
                                {"--seed", "--print-program"}),
            " (did you mean '--print-program'?)");
}

TEST(DidYouMeanTest, StaysQuietWhenNothingIsClose) {
  // Garbage gets no suggestion — a far-fetched guess is worse than none.
  EXPECT_EQ(support::didYouMean("zzzzzzzz", ctx::configNames()), "");
  EXPECT_EQ(support::didYouMean("", ctx::configNames()), "");
}

TEST(DidYouMeanTest, ConfigByNameAcceptsLadderRejectsUnknown) {
  ctx::Config Cfg;
  for (const std::string &Name : ctx::configNames())
    EXPECT_TRUE(ctx::configByName(Name, Abstraction::TransformerString, Cfg))
        << Name;
  EXPECT_FALSE(
      ctx::configByName("2-object", Abstraction::TransformerString, Cfg));
  EXPECT_FALSE(ctx::configByName("", Abstraction::TransformerString, Cfg));
}

} // namespace
