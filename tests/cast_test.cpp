//===- tests/cast_test.cpp - Cast filtering and arrays --------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Checked downcasts (type-filtered assignments) and the merged-element
// array model, across both abstractions, both engines, the oracle, and
// the demand engine.
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "cfl/Demand.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "ir/Builder.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;

namespace {

using U32s = std::vector<std::uint32_t>;

/// x holds a Dog and a Cat object; d = (Dog) x; a = (Animal) x.
struct CastFixture {
  Program P;
  VarId X, D, A;
  HeapId HDog, HCat;
};

CastFixture makeCastProgram() {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Animal = B.addClass("Animal", Obj);
  TypeId Dog = B.addClass("Dog", Animal);
  TypeId Cat = B.addClass("Cat", Animal);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  CastFixture F;
  F.X = B.addLocal(Main, "x");
  F.HDog = B.addNew(Main, F.X, Dog, "hdog");
  F.HCat = B.addNew(Main, F.X, Cat, "hcat");
  F.D = B.addLocal(Main, "d");
  B.addCast(Main, F.D, Dog, F.X);
  F.A = B.addLocal(Main, "a");
  B.addCast(Main, F.A, Animal, F.X);
  F.P = B.take();
  return F;
}

TEST(CastTest, FiltersByRuntimeType) {
  CastFixture F = makeCastProgram();
  facts::FactDB DB = facts::extract(F.P);
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    for (auto Mk : {ctx::insensitive, ctx::oneCall, ctx::twoObjectH}) {
      analysis::Results R = analysis::solve(DB, Mk(A));
      EXPECT_EQ(R.pointsTo(F.X), (U32s{F.HDog, F.HCat}));
      EXPECT_EQ(R.pointsTo(F.D), (U32s{F.HDog})); // Cat filtered out.
      EXPECT_EQ(R.pointsTo(F.A), (U32s{F.HDog, F.HCat}));
    }
  }
}

TEST(CastTest, AllEnginesAgree) {
  CastFixture F = makeCastProgram();
  facts::FactDB DB = facts::extract(F.P);
  cfl::OracleResult O = cfl::solveInsensitive(DB);
  analysis::Results Solver =
      analysis::solve(DB, ctx::insensitive(Abstraction::TransformerString));
  analysis::Results Datalog = analysis::solveViaDatalog(
      DB, ctx::insensitive(Abstraction::TransformerString));
  EXPECT_EQ(O.Pts, Solver.ciPts());
  EXPECT_EQ(O.Pts, Datalog.ciPts());

  cfl::DemandSolver D(DB);
  EXPECT_EQ(D.query(F.D).Heaps, (U32s{F.HDog}));
  EXPECT_EQ(D.query(F.A).Heaps, (U32s{F.HDog, F.HCat}));
}

TEST(CastTest, SubtypeFactsAreReflexiveTransitive) {
  CastFixture F = makeCastProgram();
  facts::FactDB DB = facts::extract(F.P);
  auto Has = [&](facts::Id Sub, facts::Id Super) {
    for (const auto &S : DB.Subtypes)
      if (S.Sub == Sub && S.Super == Super)
        return true;
    return false;
  };
  // Type ids in declaration order: Object 0, Animal 1, Dog 2, Cat 3.
  EXPECT_TRUE(Has(2, 2)); // Reflexive.
  EXPECT_TRUE(Has(2, 1)); // Direct.
  EXPECT_TRUE(Has(2, 0)); // Transitive.
  EXPECT_FALSE(Has(1, 2));
  EXPECT_FALSE(Has(2, 3));
}

TEST(ArrayTest, ElementsMergeAcrossIndices) {
  // arr[*] = a; arr[*] = b; w = arr[*] => {ha, hb} (index-insensitive).
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId Arr = B.addLocal(Main, "arr");
  B.addNew(Main, Arr, Obj, "harr");
  VarId A = B.addLocal(Main, "a");
  HeapId HA = B.addNew(Main, A, Obj, "ha");
  VarId Bv = B.addLocal(Main, "b");
  HeapId HB = B.addNew(Main, Bv, Obj, "hb");
  B.addArrayStore(Main, Arr, A);
  B.addArrayStore(Main, Arr, Bv);
  VarId W = B.addLocal(Main, "w");
  B.addArrayLoad(Main, W, Arr);
  facts::FactDB DB = facts::extract(B.take());

  analysis::Results R =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
  EXPECT_EQ(R.pointsTo(W), (U32s{HA, HB}));
}

TEST(ArrayTest, DistinctArraysStaySeparate) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId A1 = B.addLocal(Main, "a1");
  B.addNew(Main, A1, Obj, "harr1");
  VarId A2 = B.addLocal(Main, "a2");
  B.addNew(Main, A2, Obj, "harr2");
  VarId V1 = B.addLocal(Main, "v1");
  HeapId H1 = B.addNew(Main, V1, Obj, "h1");
  VarId V2 = B.addLocal(Main, "v2");
  B.addNew(Main, V2, Obj, "h2");
  B.addArrayStore(Main, A1, V1);
  B.addArrayStore(Main, A2, V2);
  VarId W = B.addLocal(Main, "w");
  B.addArrayLoad(Main, W, A1);
  facts::FactDB DB = facts::extract(B.take());
  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::ContextString));
  EXPECT_EQ(R.pointsTo(W), (U32s{H1}));
}

} // namespace
