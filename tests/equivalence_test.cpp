//===- tests/equivalence_test.cpp - Theorems 6.1 / 6.2 in practice --------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Property sweep over randomly generated programs:
//  * Soundness (Thm 6.1): the CI projection of every transformer-string
//    run contains the CI projection of the context-string run at the same
//    levels, and both contain nothing outside the CI oracle... more
//    precisely every context-sensitive result is a subset of the CI
//    oracle, and the transformer result is a superset of the context-
//    string result.
//  * Equal precision in practice (Thm 6.2 + Section 8): under call-site
//    and object sensitivity the two projections are *equal*; under type
//    sensitivity the transformer abstraction may lose precision (subset
//    direction only).
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "workload/Generator.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ctp;
using ctx::Abstraction;
using ctx::Config;

namespace {

template <typename T>
bool isSubset(const std::vector<T> &A, const std::vector<T> &B) {
  // Both sorted.
  return std::includes(B.begin(), B.end(), A.begin(), A.end());
}

facts::FactDB smallProgram(std::uint64_t Seed) {
  workload::WorkloadParams P;
  P.DataClasses = 3;
  P.WrapperChains = 2;
  P.WrapperDepth = 2;
  P.Factories = 2;
  P.Containers = 2;
  P.PolyBases = 2;
  P.PolyVariants = 3;
  P.Drivers = 3;
  P.Scenarios = 4;
  P.AstScenarios = Seed % 2 ? 2 : 0;
  P.Seed = Seed;
  return facts::extract(workload::generate(P));
}

struct EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, CallSiteAndObjectPrecisionEqual) {
  facts::FactDB DB = smallProgram(GetParam());
  for (auto MakeCfg : {ctx::oneCall, ctx::oneCallH, ctx::oneObject,
                       ctx::twoObjectH}) {
    analysis::Results Cs =
        analysis::solve(DB, MakeCfg(Abstraction::ContextString));
    analysis::Results Ts =
        analysis::solve(DB, MakeCfg(Abstraction::TransformerString));
    EXPECT_EQ(Cs.ciPts(), Ts.ciPts())
        << Cs.Config.name() << " seed " << GetParam();
    EXPECT_EQ(Cs.ciHpts(), Ts.ciHpts())
        << Cs.Config.name() << " seed " << GetParam();
    EXPECT_EQ(Cs.ciCall(), Ts.ciCall())
        << Cs.Config.name() << " seed " << GetParam();
  }
}

TEST_P(EquivalenceTest, TypeSensitivityMayOnlyLosePrecision) {
  facts::FactDB DB = smallProgram(GetParam());
  analysis::Results Cs =
      analysis::solve(DB, ctx::twoTypeH(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(DB, ctx::twoTypeH(Abstraction::TransformerString));
  // Soundness: transformer result ⊇ context-string result.
  EXPECT_TRUE(isSubset(Cs.ciPts(), Ts.ciPts())) << "seed " << GetParam();
  EXPECT_TRUE(isSubset(Cs.ciHpts(), Ts.ciHpts())) << "seed " << GetParam();
  EXPECT_TRUE(isSubset(Cs.ciCall(), Ts.ciCall())) << "seed " << GetParam();
}

TEST_P(EquivalenceTest, EverythingWithinTheInsensitiveOracle) {
  // Derived from ctx::configNames so a newly registered flavour is
  // auto-covered: configs with a datalog rule set are compared
  // native-vs-datalog, the rest are gated against the CFL oracle.
  facts::FactDB DB = smallProgram(GetParam());
  cfl::OracleResult O = cfl::solveInsensitive(DB);
  for (const std::string &Name : ctx::configNames()) {
    ctx::Config Cfg;
    ASSERT_TRUE(ctx::configByName(Name, Abstraction::ContextString, Cfg))
        << Name;
    analysis::Results R = analysis::solve(DB, Cfg);
    if (Cfg.SolveMode == ctx::Mode::Contexts) {
      analysis::Results D = analysis::solveViaDatalog(DB, Cfg);
      EXPECT_EQ(R.ciPts(), D.ciPts()) << Name << " seed " << GetParam();
      EXPECT_EQ(R.ciCall(), D.ciCall()) << Name << " seed " << GetParam();
    } else {
      RecordProperty(
          (Name + "_datalog_skip").c_str(),
          "no datalog rule set for contextless flavours; oracle-gated");
    }
    if (Cfg.SolveMode == ctx::Mode::Unify) {
      // Unification only merges, never splits: it over-approximates the
      // oracle, so the containment direction reverses.
      EXPECT_TRUE(isSubset(O.Pts, R.ciPts()))
          << Name << " seed " << GetParam();
      EXPECT_TRUE(isSubset(O.Calls, R.ciCall()))
          << Name << " seed " << GetParam();
    } else {
      EXPECT_TRUE(isSubset(R.ciPts(), O.Pts))
          << Name << " seed " << GetParam();
      EXPECT_TRUE(isSubset(R.ciCall(), O.Calls))
          << Name << " seed " << GetParam();
    }
  }
}

TEST_P(EquivalenceTest, MorePreciseConfigsAreSubsets) {
  // Context sensitivity can only shrink the CI projection: 2-call ⊆
  // 1-call ⊆ CI (classic monotonicity sanity check).
  facts::FactDB DB = smallProgram(GetParam());
  Config CI = ctx::insensitive(Abstraction::ContextString);
  Config C1 = ctx::oneCall(Abstraction::ContextString);
  Config C2{Abstraction::ContextString, ctx::Flavour::CallSite, 2, 0};
  auto RCI = analysis::solve(DB, CI).ciPts();
  auto R1 = analysis::solve(DB, C1).ciPts();
  auto R2 = analysis::solve(DB, C2).ciPts();
  EXPECT_TRUE(isSubset(R1, RCI)) << "seed " << GetParam();
  EXPECT_TRUE(isSubset(R2, R1)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

} // namespace
