//===- tests/extensions_test.cpp - Static fields and exceptions -----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The paper's evaluated implementation handles static fields and
// exceptions although Figure 3 elides them ("Rules for static fields,
// class initialization, reflection, exceptions ... are present in the
// evaluated implementation"). These tests pin down our renditions of
// those rules under both abstractions.
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "ir/Builder.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;
using ctx::Config;

namespace {

using U32s = std::vector<std::uint32_t>;

std::vector<Config> allConfigs(Abstraction A) {
  return {ctx::insensitive(A), ctx::oneCall(A), ctx::oneCallH(A),
          ctx::oneObject(A), ctx::twoObjectH(A), ctx::twoTypeH(A)};
}

TEST(GlobalFieldTest, StoreThenLoadFlows) {
  // G = x; y = G;  =>  y -> {hx}.
  Builder B;
  TypeId Obj = B.addClass("Object");
  GlobalId G = B.addGlobal("cache");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId HX = B.addNew(Main, X, Obj, "hx");
  B.addGlobalStore(Main, G, X);
  VarId Y = B.addLocal(Main, "y");
  B.addGlobalLoad(Main, Y, G);
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const Config &Cfg : allConfigs(A)) {
      analysis::Results R = analysis::solve(DB, Cfg);
      EXPECT_EQ(R.pointsTo(Y), (U32s{HX})) << Cfg.name();
      EXPECT_EQ(R.Stat.NumGpts, 1u) << Cfg.name();
    }
}

TEST(GlobalFieldTest, FlowsAcrossMethodsWithoutCalls) {
  // producer() stores into G; consumer() reads G. The two methods are
  // only connected through the global.
  Builder B;
  TypeId Obj = B.addClass("Object");
  GlobalId G = B.addGlobal("chan");
  MethodId Producer = B.addStaticMethod(Obj, "producer", 0);
  VarId PX = B.addLocal(Producer, "x");
  HeapId HP = B.addNew(Producer, PX, Obj, "hp");
  B.addGlobalStore(Producer, G, PX);
  MethodId Consumer = B.addStaticMethod(Obj, "consumer", 0);
  VarId CY = B.addLocal(Consumer, "y");
  B.addGlobalLoad(Consumer, CY, G);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  B.addStaticCall(Main, Producer, {}, InvalidId, "c1");
  B.addStaticCall(Main, Consumer, {}, InvalidId, "c2");
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::twoObjectH(A));
    EXPECT_EQ(R.pointsTo(CY), (U32s{HP}));
  }
}

TEST(GlobalFieldTest, LoadInUnreachableMethodSeesNothing) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  GlobalId G = B.addGlobal("g");
  MethodId Dead = B.addStaticMethod(Obj, "dead", 0);
  VarId DY = B.addLocal(Dead, "y");
  B.addGlobalLoad(Dead, DY, G);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  B.addNew(Main, X, Obj, "hx");
  B.addGlobalStore(Main, G, X);
  facts::FactDB DB = facts::extract(B.take());
  analysis::Results R =
      analysis::solve(DB, ctx::oneCall(Abstraction::TransformerString));
  EXPECT_TRUE(R.pointsTo(DY).empty());
}

TEST(GlobalFieldTest, LoadEnumeratesReachContextsInBothAbstractions) {
  // Loading a global re-enters concrete method contexts (retarget joins
  // with reach), so both abstractions enumerate one fact per reachable
  // context of the loading method — the transformer fact carries a
  // wildcard (∗·M̂) since the store context is severed. Keeping the reach
  // join preserves the feasibility filtering of downstream compositions,
  // hence identical precision between the abstractions.
  Builder B;
  TypeId Obj = B.addClass("Object");
  GlobalId G = B.addGlobal("g");
  MethodId Reader = B.addStaticMethod(Obj, "reader", 0);
  VarId RY = B.addLocal(Reader, "y");
  B.addGlobalLoad(Reader, RY, G);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId HX = B.addNew(Main, X, Obj, "hx");
  B.addGlobalStore(Main, G, X);
  for (int I = 0; I < 4; ++I)
    B.addStaticCall(Main, Reader, {}, InvalidId,
                    "site" + std::to_string(I));
  facts::FactDB DB = facts::extract(B.take());

  analysis::Results Cs =
      analysis::solve(DB, ctx::oneCall(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(DB, ctx::oneCall(Abstraction::TransformerString));
  auto CountY = [&](const analysis::Results &R) {
    std::size_t N = 0;
    for (const auto &F : R.Pts)
      if (F.Var == RY)
        ++N;
    return N;
  };
  EXPECT_EQ(CountY(Cs), 4u); // One per reachable context of reader.
  EXPECT_EQ(CountY(Ts), 4u); // Same: one ∗·M̂ fact per context.
  bool AllWild = true;
  for (const auto &F : Ts.Pts)
    if (F.Var == RY)
      AllWild &= Ts.Dom->transformer(F.T).Wild;
  EXPECT_TRUE(AllWild);
  EXPECT_EQ(Cs.pointsTo(RY), (U32s{HX}));
  EXPECT_EQ(Ts.pointsTo(RY), (U32s{HX}));
}

TEST(ExceptionTest, ThrownObjectReachesCatch) {
  // thrower() { e = new; throw e; }  main: call with catch(y).
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Thrower = B.addStaticMethod(Obj, "thrower", 0);
  VarId E = B.addLocal(Thrower, "e");
  HeapId HE = B.addNew(Thrower, E, Obj, "he");
  B.addThrow(Thrower, E);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  InvokeId I = B.addStaticCall(Main, Thrower, {}, InvalidId, "c0");
  VarId Y = B.addLocal(Main, "y");
  B.setCatchVar(I, Y);
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const Config &Cfg : allConfigs(A)) {
      analysis::Results R = analysis::solve(DB, Cfg);
      EXPECT_EQ(R.pointsTo(Y), (U32s{HE})) << Cfg.name();
    }
}

TEST(ExceptionTest, UnhandledExceptionVanishes) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Thrower = B.addStaticMethod(Obj, "thrower", 0);
  VarId E = B.addLocal(Thrower, "e");
  B.addNew(Thrower, E, Obj, "he");
  B.addThrow(Thrower, E);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  B.addStaticCall(Main, Thrower, {}, InvalidId, "c0"); // No catch var.
  facts::FactDB DB = facts::extract(B.take());
  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::ContextString));
  // Nothing in main points to the exception object.
  for (const auto &F : R.Pts)
    EXPECT_NE(DB.VarParent[F.Var], static_cast<std::uint32_t>(Main));
}

TEST(ExceptionTest, ContextSensitiveCatchPrecision) {
  // echoThrow(p) throws its parameter; two call sites with different
  // arguments must catch different objects under 1-call sensitivity.
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Echo = B.addStaticMethod(Obj, "echoThrow", 1);
  B.addThrow(Echo, B.formal(Echo, 0));
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X1 = B.addLocal(Main, "x1");
  HeapId H1 = B.addNew(Main, X1, Obj, "h1");
  VarId X2 = B.addLocal(Main, "x2");
  HeapId H2 = B.addNew(Main, X2, Obj, "h2");
  InvokeId I1 = B.addStaticCall(Main, Echo, {X1}, InvalidId, "c1");
  VarId Y1 = B.addLocal(Main, "y1");
  B.setCatchVar(I1, Y1);
  InvokeId I2 = B.addStaticCall(Main, Echo, {X2}, InvalidId, "c2");
  VarId Y2 = B.addLocal(Main, "y2");
  B.setCatchVar(I2, Y2);
  facts::FactDB DB = facts::extract(B.take());

  // Context-insensitively the two catches merge...
  analysis::Results CI =
      analysis::solve(DB, ctx::insensitive(Abstraction::ContextString));
  EXPECT_EQ(CI.pointsTo(Y1), (U32s{H1, H2}));
  // ...1-call separates them, under both abstractions.
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::oneCall(A));
    EXPECT_EQ(R.pointsTo(Y1), (U32s{H1}));
    EXPECT_EQ(R.pointsTo(Y2), (U32s{H2}));
  }
}

TEST(ExtensionsTest, DatalogFrontendAgreesOnGlobalsAndExceptions) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  GlobalId G = B.addGlobal("g");
  MethodId Thrower = B.addStaticMethod(Obj, "thrower", 1);
  VarId E = B.addLocal(Thrower, "e");
  B.addNew(Thrower, E, Obj, "he");
  B.addThrow(Thrower, E);
  B.addGlobalStore(Thrower, G, B.formal(Thrower, 0));
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  B.addNew(Main, X, Obj, "hx");
  InvokeId I = B.addStaticCall(Main, Thrower, {X}, InvalidId, "c0");
  VarId Y = B.addLocal(Main, "y");
  B.setCatchVar(I, Y);
  VarId Z = B.addLocal(Main, "z");
  B.addGlobalLoad(Main, Z, G);
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    ctx::Config Cfg = ctx::twoObjectH(A);
    analysis::Results Fast = analysis::solve(DB, Cfg);
    analysis::Results Slow = analysis::solveViaDatalog(DB, Cfg);
    EXPECT_EQ(Fast.Stat.NumPts, Slow.Stat.NumPts) << Cfg.name();
    EXPECT_EQ(Fast.Stat.NumGpts, Slow.Stat.NumGpts) << Cfg.name();
    EXPECT_EQ(Fast.ciPts(), Slow.ciPts()) << Cfg.name();
  }
}

TEST(ExtensionsTest, OracleCoversGlobalsAndExceptions) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  GlobalId G = B.addGlobal("g");
  MethodId Thrower = B.addStaticMethod(Obj, "thrower", 0);
  VarId E = B.addLocal(Thrower, "e");
  HeapId HE = B.addNew(Thrower, E, Obj, "he");
  B.addThrow(Thrower, E);
  B.addGlobalStore(Thrower, G, E);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  InvokeId I = B.addStaticCall(Main, Thrower, {}, InvalidId, "c0");
  VarId Y = B.addLocal(Main, "y");
  B.setCatchVar(I, Y);
  VarId Z = B.addLocal(Main, "z");
  B.addGlobalLoad(Main, Z, G);
  facts::FactDB DB = facts::extract(B.take());

  cfl::OracleResult O = cfl::solveInsensitive(DB);
  analysis::Results R = analysis::solve(
      DB, ctx::insensitive(Abstraction::TransformerString));
  EXPECT_EQ(O.Pts, R.ciPts());
  // Both paths deliver the exception object.
  EXPECT_EQ(R.pointsTo(Y), (U32s{HE}));
  EXPECT_EQ(R.pointsTo(Z), (U32s{HE}));
}

} // namespace
