//===- tests/config_test.cpp - Configuration and naming -------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/Config.h"
#include "ctx/Ctxt.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ctx;

namespace {

TEST(ConfigTest, Figure6ConfigsValidate) {
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    EXPECT_EQ(oneCall(A).validate(), "");
    EXPECT_EQ(oneCallH(A).validate(), "");
    EXPECT_EQ(oneObject(A).validate(), "");
    EXPECT_EQ(twoObjectH(A).validate(), "");
    EXPECT_EQ(twoTypeH(A).validate(), "");
    EXPECT_EQ(insensitive(A).validate(), "");
  }
}

TEST(ConfigTest, SideConditionsEnforced) {
  // Call-site sensitivity requires h <= m.
  Config BadCall{Abstraction::ContextString, Flavour::CallSite, 1, 2};
  EXPECT_NE(BadCall.validate(), "");
  // Object sensitivity requires h = m - 1 (Figure 3's side condition).
  Config BadObj{Abstraction::ContextString, Flavour::Object, 2, 0};
  EXPECT_NE(BadObj.validate(), "");
  Config BadObj2{Abstraction::ContextString, Flavour::Object, 2, 2};
  EXPECT_NE(BadObj2.validate(), "");
  Config GoodObj{Abstraction::ContextString, Flavour::Object, 3, 2};
  EXPECT_EQ(GoodObj.validate(), "");
  // Depth ceiling.
  Config TooDeep{Abstraction::ContextString, Flavour::CallSite, 9, 0};
  EXPECT_NE(TooDeep.validate(), "");
  // Type sensitivity mirrors object's side condition.
  Config BadType{Abstraction::TransformerString, Flavour::Type, 2, 0};
  EXPECT_NE(BadType.validate(), "");
}

TEST(ConfigTest, DisplayNames) {
  EXPECT_EQ(oneCall(Abstraction::ContextString).name(), "1-call(cs)");
  EXPECT_EQ(oneCallH(Abstraction::TransformerString).name(),
            "1-call+H(ts)");
  EXPECT_EQ(twoObjectH(Abstraction::TransformerString).name(),
            "2-object+H(ts)");
  EXPECT_EQ(twoTypeH(Abstraction::ContextString).name(), "2-type+H(cs)");
}

TEST(ConfigTest, FlavourAndAbstractionNames) {
  EXPECT_STREQ(flavourName(Flavour::CallSite), "call-site");
  EXPECT_STREQ(flavourName(Flavour::Object), "object");
  EXPECT_STREQ(flavourName(Flavour::Type), "type");
  EXPECT_STREQ(abstractionName(Abstraction::ContextString),
               "context-string");
  EXPECT_STREQ(abstractionName(Abstraction::TransformerString),
               "transformer-string");
}

TEST(CtxtTest, ElementEncoding) {
  EXPECT_EQ(elemOfEntity(0), 1u);
  EXPECT_EQ(entityOfElem(elemOfEntity(41)), 41u);
  EXPECT_EQ(printElemDefault(EntryElem), "entry");
  EXPECT_EQ(printElemDefault(elemOfEntity(3)), "#3");
}

TEST(CtxtTest, VectorPrinting) {
  CtxtVec V;
  V.push_back(EntryElem);
  V.push_back(elemOfEntity(2));
  EXPECT_EQ(printCtxtVec(V), "[entry, #2]");
  EXPECT_EQ(printCtxtVec(CtxtVec()), "[]");
  // Custom printer.
  EXPECT_EQ(printCtxtVec(V, [](CtxtElem E) {
              return E == EntryElem ? std::string("E")
                                    : std::string("x");
            }),
            "[E, x]");
}

} // namespace
