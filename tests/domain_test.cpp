//===- tests/domain_test.cpp - Figure-4 flavour policy tests --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Checks record / merge / merge_s / target under each abstraction and each
// flavour against the definitions of Figure 4.
//
//===----------------------------------------------------------------------===//

#include "ctx/Domain.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ctx;

namespace {

CtxtVec vec(std::initializer_list<CtxtElem> E) {
  CtxtVec V;
  for (CtxtElem X : E)
    V.push_back(X);
  return V;
}

// Heap site 0 belongs to class 5; heap site 1 to class 6.
std::vector<std::uint32_t> classTable() { return {5, 6}; }

TEST(DomainTest, ContextStringRecord) {
  Config Cfg = oneCallH(Abstraction::ContextString); // m = 1, h = 1.
  auto D = makeDomain(Cfg, classTable());
  CtxtVec M = vec({elemOfEntity(3)});
  TransformId T = D->record(M);
  const CtxtPair &P = D->ctxtPair(T);
  EXPECT_EQ(P.In, M);
  EXPECT_EQ(P.Out, M);
}

TEST(DomainTest, TransformerRecordIsIdentity) {
  auto D = makeDomain(twoObjectH(Abstraction::TransformerString),
                      classTable());
  TransformId T = D->record(vec({EntryElem}));
  EXPECT_TRUE(D->transformer(T).isIdentity());
  // Same id regardless of the reach context — the compact representation.
  EXPECT_EQ(T, D->record(vec({elemOfEntity(9), EntryElem})));
}

TEST(DomainTest, CallSiteMergeStatic) {
  // merge_s^c(I, M) = (M, I·prefix_{m-1}(M)).
  Config Cfg{Abstraction::ContextString, Flavour::CallSite, 2, 0};
  auto D = makeDomain(Cfg, classTable());
  CtxtVec M = vec({elemOfEntity(1), EntryElem});
  TransformId T = D->mergeStatic(/*Invoke=*/4, M);
  const CtxtPair &P = D->ctxtPair(T);
  EXPECT_EQ(P.In, M);
  EXPECT_EQ(P.Out, vec({elemOfEntity(4), elemOfEntity(1)}));
  // target is the callee context.
  EXPECT_EQ(D->target(T), P.Out);
}

TEST(DomainTest, CallSiteMergeStaticTransformer) {
  // merge_s^t(I, _) = Î, independent of the reach context.
  Config Cfg{Abstraction::TransformerString, Flavour::CallSite, 2, 0};
  auto D = makeDomain(Cfg, classTable());
  TransformId T = D->mergeStatic(4, vec({EntryElem}));
  const Transformer &Tr = D->transformer(T);
  EXPECT_TRUE(Tr.Exits.empty());
  EXPECT_FALSE(Tr.Wild);
  EXPECT_EQ(Tr.Entries, vec({elemOfEntity(4)}));
  EXPECT_EQ(T, D->mergeStatic(4, vec({elemOfEntity(8), EntryElem})));
}

TEST(DomainTest, ObjectMergeStaticIsPrefixFilter) {
  // merge_s^t(I, M) = M̌·M̂ under object sensitivity (the N·N̂ trick).
  auto D = makeDomain(twoObjectH(Abstraction::TransformerString),
                      classTable());
  CtxtVec M = vec({elemOfEntity(0), EntryElem});
  TransformId T = D->mergeStatic(4, M);
  const Transformer &Tr = D->transformer(T);
  EXPECT_EQ(Tr.Exits, M);
  EXPECT_EQ(Tr.Entries, M);
  EXPECT_FALSE(Tr.Wild);
  EXPECT_EQ(D->target(T), M);
}

TEST(DomainTest, ObjectMergeVirtualContextString) {
  // merge^c(H, I, (H', M)) = (M, H·H') with h = 1, m = 2.
  auto D = makeDomain(twoObjectH(Abstraction::ContextString), classTable());
  // Receiver pts transformation: heap ctx [e9], method ctx [e9, entry].
  CtxtVec Hp = vec({elemOfEntity(9)});
  CtxtVec Mc = vec({elemOfEntity(9), EntryElem});
  // Intern the pair by running it through record on an equivalent path:
  // build via comp of record? Simpler: record gives (prefix_1(M), M).
  TransformId B = D->record(Mc); // (prefix_1 = [e9], [e9, entry]).
  TransformId C = D->mergeVirtual(/*Heap=*/1, /*Invoke=*/7, B);
  const CtxtPair &P = D->ctxtPair(C);
  EXPECT_EQ(P.In, Mc);
  EXPECT_EQ(P.Out, vec({elemOfEntity(1), elemOfEntity(9)}));
  (void)Hp;
}

TEST(DomainTest, ObjectMergeVirtualTransformer) {
  // merge^t(H, I, Ǎ·w·B̂) = B̌·w·Â·Ĥ: exits = entries(B), entries = H·A.
  auto D = makeDomain(twoObjectH(Abstraction::TransformerString),
                      classTable());
  Transformer B;
  B.Exits = vec({elemOfEntity(3)});   // A — receiver's heap context path.
  B.Entries = vec({elemOfEntity(4)}); // B.
  // Intern B through compose: record ∘ ... — instead reach inside: use
  // comp with identity to intern an arbitrary transformer is not exposed,
  // so drive it through mergeVirtual on the identity and compose by hand.
  // Here we check the policy directly through the public surface:
  TransformId Eps = D->record(vec({EntryElem}));
  // With B = ε: merge = (exits ε-entries = [], entries = [H]).
  TransformId C = D->mergeVirtual(/*Heap=*/0, /*Invoke=*/7, Eps);
  const Transformer &Tc = D->transformer(C);
  EXPECT_TRUE(Tc.Exits.empty());
  EXPECT_EQ(Tc.Entries, vec({elemOfEntity(0)}));
  EXPECT_FALSE(Tc.Wild);
}

TEST(DomainTest, TypeMergeUsesClassOfHeap) {
  auto D = makeDomain(twoTypeH(Abstraction::TransformerString),
                      classTable());
  TransformId Eps = D->record(vec({EntryElem}));
  TransformId C = D->mergeVirtual(/*Heap=*/1, /*Invoke=*/7, Eps);
  // classOf(heap 1) = type 6.
  EXPECT_EQ(D->transformer(C).Entries, vec({elemOfEntity(6)}));
}

TEST(DomainTest, CallSiteMergeVirtualTransformer) {
  // merge^t(H, I, Ǎ·w·B̂) = trunc_{m,m}(B̌·B̂·Î): exits = entries,
  // entries = I·entries.
  Config Cfg{Abstraction::TransformerString, Flavour::CallSite, 2, 1};
  auto D = makeDomain(Cfg, classTable());
  TransformId Eps = D->record(vec({EntryElem}));
  TransformId C = D->mergeVirtual(0, /*Invoke=*/7, Eps);
  const Transformer &Tc = D->transformer(C);
  EXPECT_TRUE(Tc.Exits.empty());
  EXPECT_EQ(Tc.Entries, vec({elemOfEntity(7)}));
}

TEST(DomainTest, CompMemoizationIsStable) {
  auto D = makeDomain(oneCallH(Abstraction::TransformerString),
                      classTable());
  TransformId Eps = D->record(vec({EntryElem}));
  TransformId C = D->mergeStatic(2, vec({EntryElem}));
  auto R1 = D->comp(Eps, C, 1, 1);
  auto R2 = D->comp(Eps, C, 1, 1);
  ASSERT_TRUE(R1.has_value());
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(*R1, *R2);
}

TEST(DomainTest, CompBottomIsFiltered) {
  auto D = makeDomain(oneCallH(Abstraction::TransformerString),
                      classTable());
  TransformId C2 = D->mergeStatic(2, vec({EntryElem})); // Î2
  TransformId C3 = D->mergeStatic(3, vec({EntryElem})); // Î3
  TransformId Inv3 = D->inv(C3);                        // Ǐ3
  // Î2 ; Ǐ3 = ⊥.
  EXPECT_FALSE(D->comp(C2, Inv3, 1, 1).has_value());
  // Repeat to exercise the memoized-⊥ path.
  EXPECT_FALSE(D->comp(C2, Inv3, 1, 1).has_value());
}

TEST(DomainTest, InsensitiveConfigCollapsesEverything) {
  auto D = makeDomain(insensitive(Abstraction::TransformerString), {});
  CtxtVec Empty;
  TransformId R1 = D->record(Empty);
  TransformId C = D->mergeStatic(3, Empty);
  // With m = 0, merge_s truncates Î to a pure wildcard.
  const Transformer &Tc = D->transformer(C);
  EXPECT_TRUE(Tc.Exits.empty());
  EXPECT_TRUE(Tc.Entries.empty());
  EXPECT_TRUE(Tc.Wild);
  EXPECT_TRUE(D->transformer(R1).isIdentity());
}

} // namespace
