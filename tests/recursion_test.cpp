//===- tests/recursion_test.cpp - Recursive programs ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Recursive call cycles produce method contexts of unbounded length
// (Section 4: "a finite abstraction of context transformations requires
// some form of approximation"). These tests pin down that k-limiting
// makes both abstractions terminate on recursion, stay sound w.r.t. the
// CI oracle, and keep identical precision.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "ir/Builder.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;
using ctx::Config;

namespace {

using U32s = std::vector<std::uint32_t>;

std::vector<Config> allConfigs(Abstraction A) {
  return {ctx::insensitive(A), ctx::oneCall(A), ctx::oneCallH(A),
          ctx::oneObject(A), ctx::twoObjectH(A), ctx::twoTypeH(A),
          Config{A, ctx::Flavour::CallSite, 2, 1},
          Config{A, ctx::Flavour::Object, 3, 2}};
}

void expectSoundAndEqual(const facts::FactDB &DB) {
  cfl::OracleResult O = cfl::solveInsensitive(DB);
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const Config &Cfg : allConfigs(A)) {
      analysis::Results R = analysis::solve(DB, Cfg);
      auto Ci = R.ciPts();
      EXPECT_TRUE(std::includes(O.Pts.begin(), O.Pts.end(), Ci.begin(),
                                Ci.end()))
          << Cfg.name();
    }
  for (const Config &CsCfg : allConfigs(Abstraction::ContextString)) {
    if (CsCfg.Flav == ctx::Flavour::Type)
      continue;
    Config TsCfg = CsCfg;
    TsCfg.Abs = Abstraction::TransformerString;
    EXPECT_EQ(analysis::solve(DB, CsCfg).ciPts(),
              analysis::solve(DB, TsCfg).ciPts())
        << CsCfg.name();
  }
}

TEST(RecursionTest, DirectStaticRecursion) {
  // rec(p) { t = rec(p); return p; }  — infinite call string, finite
  // k-limited contexts.
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Rec = B.addStaticMethod(Obj, "rec", 1);
  VarId T = B.addLocal(Rec, "t");
  InvokeId Self =
      B.addStaticCall(Rec, Rec, {B.formal(Rec, 0)}, T, "self");
  (void)Self;
  B.addReturn(Rec, B.formal(Rec, 0));
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId H = B.addNew(Main, X, Obj, "h");
  VarId Y = B.addLocal(Main, "y");
  B.addStaticCall(Main, Rec, {X}, Y, "c0");
  facts::FactDB DB = facts::extract(B.take());

  expectSoundAndEqual(DB);
  analysis::Results R = analysis::solve(
      DB, Config{Abstraction::TransformerString, ctx::Flavour::CallSite,
                 2, 1});
  EXPECT_EQ(R.pointsTo(Y), (U32s{H}));
  EXPECT_EQ(R.pointsTo(T), (U32s{H}));
}

TEST(RecursionTest, MutualRecursion) {
  // even(p) calls odd(p), odd(p) calls even(p); both return p.
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Even = B.addStaticMethod(Obj, "even", 1);
  MethodId Odd = B.addStaticMethod(Obj, "odd", 1);
  VarId ET = B.addLocal(Even, "t");
  B.addStaticCall(Even, Odd, {B.formal(Even, 0)}, ET, "eo");
  B.addReturn(Even, ET);
  B.addReturn(Even, B.formal(Even, 0));
  VarId OT = B.addLocal(Odd, "t");
  B.addStaticCall(Odd, Even, {B.formal(Odd, 0)}, OT, "oe");
  B.addReturn(Odd, OT);
  B.addReturn(Odd, B.formal(Odd, 0));
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId H = B.addNew(Main, X, Obj, "h");
  VarId Y = B.addLocal(Main, "y");
  B.addStaticCall(Main, Even, {X}, Y, "c0");
  facts::FactDB DB = facts::extract(B.take());

  expectSoundAndEqual(DB);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  EXPECT_EQ(R.pointsTo(Y), (U32s{H}));
}

TEST(RecursionTest, RecursiveVirtualDispatch) {
  // node.walk() recurses on this — object-sensitive contexts stay at the
  // receiver's allocation site; no growth.
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Node = B.addClass("Node", Obj);
  MethodId Walk = B.addMethod(Node, "walk", 0);
  SigId WalkSig = B.signature("walk", 0);
  VarId WT = B.addLocal(Walk, "t");
  B.addVirtualCall(Walk, B.thisVar(Walk), WalkSig, {}, WT, "recurse");
  VarId Fresh = B.addLocal(Walk, "fresh");
  HeapId HF = B.addNew(Walk, Fresh, Obj, "hf");
  B.addReturn(Walk, Fresh);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId N = B.addLocal(Main, "n");
  B.addNew(Main, N, Node, "hn");
  VarId Out = B.addLocal(Main, "out");
  B.addVirtualCall(Main, N, WalkSig, {}, Out, "start");
  facts::FactDB DB = facts::extract(B.take());

  expectSoundAndEqual(DB);
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::twoObjectH(A));
    EXPECT_EQ(R.pointsTo(Out), (U32s{HF}));
    EXPECT_EQ(R.pointsTo(WT), (U32s{HF}));
  }
}

TEST(RecursionTest, RecursiveListConstruction) {
  // build(prev) { n = new Node; n.next = prev; r = build(n); return r; }
  // plus a traversal load — heap-recursive data, call-recursive code.
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Node = B.addClass("Node", Obj);
  FieldId Next = B.addField("next");
  MethodId Build = B.addStaticMethod(Obj, "build", 1);
  VarId N = B.addLocal(Build, "n");
  HeapId HN = B.addNew(Build, N, Node, "hnode");
  B.addStore(Build, N, Next, B.formal(Build, 0));
  VarId R = B.addLocal(Build, "r");
  B.addStaticCall(Build, Build, {N}, R, "grow");
  B.addReturn(Build, R);
  B.addReturn(Build, N);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId Seed = B.addLocal(Main, "seed");
  HeapId HSeed = B.addNew(Main, Seed, Node, "hseed");
  VarId List = B.addLocal(Main, "list");
  B.addStaticCall(Main, Build, {Seed}, List, "c0");
  VarId Walk = B.addLocal(Main, "walk");
  B.addLoad(Main, Walk, List, Next);
  facts::FactDB DB = facts::extract(B.take());

  expectSoundAndEqual(DB);
  analysis::Results Res =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::TransformerString));
  // The list head is always an hnode object; following next reaches
  // either another hnode or the seed.
  EXPECT_EQ(Res.pointsTo(List), (U32s{HN}));
  EXPECT_EQ(Res.pointsTo(Walk), (U32s{HN, HSeed}));
}

TEST(RecursionTest, DeepDepthConfigsStillTerminate) {
  // Recursion at the maximum supported depth (m = 4) — the truncation
  // wildcard is what guarantees a finite domain.
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Rec = B.addStaticMethod(Obj, "rec", 1);
  VarId T = B.addLocal(Rec, "t");
  B.addStaticCall(Rec, Rec, {B.formal(Rec, 0)}, T, "self");
  B.addReturn(Rec, B.formal(Rec, 0));
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId H = B.addNew(Main, X, Obj, "h");
  VarId Y = B.addLocal(Main, "y");
  B.addStaticCall(Main, Rec, {X}, Y, "c0");
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    Config Cfg{A, ctx::Flavour::CallSite, 4, 4};
    ASSERT_EQ(Cfg.validate(), "");
    analysis::Results R = analysis::solve(DB, Cfg);
    EXPECT_EQ(R.pointsTo(Y), (U32s{H})) << Cfg.name();
  }
}

} // namespace
