//===- tests/context_string_test.cpp - Context-string pair tests ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Unit tests for the traditional abstraction of Section 4.1.
//
//===----------------------------------------------------------------------===//

#include "ctx/ContextString.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ctx;

namespace {

CtxtVec vec(std::initializer_list<CtxtElem> E) {
  CtxtVec V;
  for (CtxtElem X : E)
    V.push_back(X);
  return V;
}

TEST(ContextStringTest, ComposeJoinsOnMiddle) {
  CtxtPair A{vec({1}), vec({2, 3})};
  CtxtPair B{vec({2, 3}), vec({4})};
  auto R = composePairs(A, B);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->In, vec({1}));
  EXPECT_EQ(R->Out, vec({4}));
}

TEST(ContextStringTest, ComposeFailsOnMismatch) {
  CtxtPair A{vec({1}), vec({2})};
  CtxtPair B{vec({3}), vec({4})};
  EXPECT_FALSE(composePairs(A, B).has_value());
  // Prefix-related but unequal middles also fail: both operands are
  // truncated to the same length by the rule schema, so equality is the
  // designed join.
  CtxtPair C{vec({2, 9}), vec({4})};
  EXPECT_FALSE(composePairs(A, C).has_value());
}

TEST(ContextStringTest, InverseSwaps) {
  CtxtPair A{vec({1}), vec({2, 3})};
  CtxtPair Inv = inversePair(A);
  EXPECT_EQ(Inv.In, vec({2, 3}));
  EXPECT_EQ(Inv.Out, vec({1}));
  EXPECT_EQ(inversePair(Inv), A);
}

TEST(ContextStringTest, RecordTruncatesHeapSide) {
  CtxtVec M = vec({5, 6, 7});
  CtxtPair P = recordPair(M, 1);
  EXPECT_EQ(P.In, vec({5}));
  EXPECT_EQ(P.Out, M);
  CtxtPair P0 = recordPair(M, 0);
  EXPECT_TRUE(P0.In.empty());
}

TEST(ContextStringTest, TargetIsOut) {
  CtxtPair A{vec({1}), vec({2, 3})};
  EXPECT_EQ(targetPair(A), vec({2, 3}));
}

TEST(ContextStringTest, HashAndEquality) {
  CtxtPair A{vec({1}), vec({2})};
  CtxtPair B{vec({1}), vec({2})};
  CtxtPair C{vec({2}), vec({1})};
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(CtxtPairHash()(A), CtxtPairHash()(B));
}

TEST(ContextStringTest, Printing) {
  CtxtPair A{vec({EntryElem}), vec({elemOfEntity(4)})};
  EXPECT_EQ(printCtxtPair(A), "([entry] -> [#4])");
}

} // namespace
