//===- tests/configurations_test.cpp - §7 configuration census ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

using namespace ctp;
using ctx::Abstraction;
using ctx::Transformer;

namespace {

Transformer make(std::initializer_list<ctx::CtxtElem> Exits, bool Wild,
                 std::initializer_list<ctx::CtxtElem> Entries) {
  Transformer T;
  for (ctx::CtxtElem E : Exits)
    T.Exits.push_back(E);
  T.Wild = Wild;
  for (ctx::CtxtElem E : Entries)
    T.Entries.push_back(E);
  return T;
}

TEST(ConfigurationsTest, TagsFollowSection7Grammar) {
  EXPECT_EQ(analysis::configurationOf(Transformer::identity()), "");
  EXPECT_EQ(analysis::configurationOf(make({}, true, {})), "w");
  EXPECT_EQ(analysis::configurationOf(make({1}, false, {2})), "xe");
  EXPECT_EQ(analysis::configurationOf(make({1, 2}, true, {3})), "xxwe");
  EXPECT_EQ(analysis::configurationOf(make({}, false, {1, 2})), "ee");
}

TEST(ConfigurationsTest, Figure5Histogram) {
  // The Figure-5 transformer column has pts facts ε (h, r), îd1 (p),
  // m̌1 (x), m̌2 (y): configurations "" x2, "e" x1, "x" x2.
  facts::FactDB DB = facts::extract(workload::figure5().P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  auto Hist = analysis::ptsConfigurationHistogram(R);
  EXPECT_EQ(Hist[""], 2u);
  EXPECT_EQ(Hist["e"], 1u);
  EXPECT_EQ(Hist["x"], 2u);
  std::size_t Total = 0;
  for (const auto &[Tag, N] : Hist)
    Total += N;
  EXPECT_EQ(Total, R.Stat.NumPts);
}

TEST(ConfigurationsTest, Figure7ShowsBothPathConfigurations) {
  // The two data-flow paths of Figure 7 deliver v's fact in the ε and
  // "xe" configurations — the subsuming pair of Section 8.
  facts::FactDB DB = facts::extract(workload::figure7().P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  auto Hist = analysis::ptsConfigurationHistogram(R);
  EXPECT_GE(Hist[""], 1u);
  EXPECT_GE(Hist["xe"], 1u);
}

} // namespace
