//===- tests/solver_basic_test.cpp - Solver smoke and unit tests ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Small hand-written programs with exactly known points-to results, run
// through every abstraction × flavour combination.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "ir/Builder.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;
using ctx::Config;
using ctx::Flavour;

namespace {

std::vector<Config> allFigure6Configs(Abstraction A) {
  return {ctx::oneCall(A), ctx::oneCallH(A), ctx::oneObject(A),
          ctx::twoObjectH(A), ctx::twoTypeH(A)};
}

TEST(SolverBasicTest, DirectAllocation) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId H = B.addNew(Main, X, Obj, "h");
  VarId Y = B.addLocal(Main, "y");
  B.addAssign(Main, Y, X);
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const Config &Cfg : allFigure6Configs(A)) {
      analysis::Results R = analysis::solve(DB, Cfg);
      EXPECT_EQ(R.pointsTo(X), std::vector<std::uint32_t>{H})
          << Cfg.name();
      EXPECT_EQ(R.pointsTo(Y), std::vector<std::uint32_t>{H})
          << Cfg.name();
    }
}

TEST(SolverBasicTest, FieldStoreLoad) {
  // box = new Box; v = new Obj; box.f = v; w = box.f  =>  w -> {v's heap}.
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Box = B.addClass("Box", Obj);
  FieldId F = B.addField("f");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId BoxV = B.addLocal(Main, "box");
  B.addNew(Main, BoxV, Box, "hbox");
  VarId V = B.addLocal(Main, "v");
  HeapId HV = B.addNew(Main, V, Obj, "hv");
  B.addStore(Main, BoxV, F, V);
  VarId W = B.addLocal(Main, "w");
  B.addLoad(Main, W, BoxV, F);
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const Config &Cfg : allFigure6Configs(A)) {
      analysis::Results R = analysis::solve(DB, Cfg);
      EXPECT_EQ(R.pointsTo(W), std::vector<std::uint32_t>{HV})
          << Cfg.name();
    }
}

TEST(SolverBasicTest, DistinctBoxesDoNotLeak) {
  // b1.f = v1; b2.f = v2; w = b1.f  =>  w -> {h1} only.
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Box = B.addClass("Box", Obj);
  FieldId F = B.addField("f");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId B1 = B.addLocal(Main, "b1");
  B.addNew(Main, B1, Box, "hb1");
  VarId B2 = B.addLocal(Main, "b2");
  B.addNew(Main, B2, Box, "hb2");
  VarId V1 = B.addLocal(Main, "v1");
  HeapId H1 = B.addNew(Main, V1, Obj, "h1");
  VarId V2 = B.addLocal(Main, "v2");
  B.addNew(Main, V2, Obj, "h2");
  B.addStore(Main, B1, F, V1);
  B.addStore(Main, B2, F, V2);
  VarId W = B.addLocal(Main, "w");
  B.addLoad(Main, W, B1, F);
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::oneObject(A));
    EXPECT_EQ(R.pointsTo(W), std::vector<std::uint32_t>{H1});
  }
}

TEST(SolverBasicTest, StaticCallParameterAndReturn) {
  // static id(p) { return p; }  x = new; y = id(x).
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Id = B.addStaticMethod(Obj, "id", 1);
  VarId P0 = B.formal(Id, 0);
  B.addReturn(Id, P0);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  HeapId H = B.addNew(Main, X, Obj, "h");
  VarId Y = B.addLocal(Main, "y");
  B.addStaticCall(Main, Id, {X}, Y, "c0");
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const Config &Cfg : allFigure6Configs(A)) {
      analysis::Results R = analysis::solve(DB, Cfg);
      EXPECT_EQ(R.pointsTo(Y), std::vector<std::uint32_t>{H})
          << Cfg.name();
      EXPECT_EQ(R.pointsTo(P0), std::vector<std::uint32_t>{H})
          << Cfg.name();
    }
}

TEST(SolverBasicTest, VirtualDispatchSelectsOverride) {
  // Base.op returns fresh A-object; Derived.op returns fresh B-object.
  // Receiver holds a Derived => result points only to Derived's site.
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Base = B.addClass("Base", Obj);
  TypeId Der = B.addClass("Derived", Base);
  MethodId BaseOp = B.addMethod(Base, "op", 0);
  VarId BR = B.addLocal(BaseOp, "r");
  B.addNew(BaseOp, BR, Obj, "hbase");
  B.addReturn(BaseOp, BR);
  MethodId DerOp = B.addMethod(Der, "op", 0);
  VarId DR = B.addLocal(DerOp, "r");
  HeapId HDer = B.addNew(DerOp, DR, Obj, "hder");
  B.addReturn(DerOp, DR);
  SigId Op = B.signature("op", 0);

  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId Recv = B.addLocal(Main, "recv");
  B.addNew(Main, Recv, Der, "hrecv");
  VarId Out = B.addLocal(Main, "out");
  B.addVirtualCall(Main, Recv, Op, {}, Out, "c0");
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString})
    for (const Config &Cfg : allFigure6Configs(A)) {
      analysis::Results R = analysis::solve(DB, Cfg);
      EXPECT_EQ(R.pointsTo(Out), std::vector<std::uint32_t>{HDer})
          << Cfg.name();
      // Base.op must stay unreachable.
      auto Reached = R.ciReach();
      EXPECT_FALSE(std::binary_search(Reached.begin(), Reached.end(),
                                      BaseOp))
          << Cfg.name();
    }
}

TEST(SolverBasicTest, UnreachableCodeDerivesNothing) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Dead = B.addStaticMethod(Obj, "dead", 0);
  VarId DX = B.addLocal(Dead, "x");
  B.addNew(Dead, DX, Obj, "hdead");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  B.addNew(Main, X, Obj, "hlive");
  facts::FactDB DB = facts::extract(B.take());

  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::TransformerString));
  EXPECT_TRUE(R.pointsTo(DX).empty());
  EXPECT_EQ(R.ciReach(), std::vector<std::uint32_t>{Main});
}

TEST(SolverBasicTest, StatsAreConsistent) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId X = B.addLocal(Main, "x");
  B.addNew(Main, X, Obj, "h");
  facts::FactDB DB = facts::extract(B.take());
  analysis::Results R =
      analysis::solve(DB, ctx::oneCall(Abstraction::ContextString));
  EXPECT_EQ(R.Stat.NumPts, R.Pts.size());
  EXPECT_EQ(R.Stat.NumReach, R.Reach.size());
  EXPECT_EQ(R.Stat.total(), R.Pts.size() + R.Hpts.size() + R.Call.size());
  EXPECT_GT(R.Stat.WorkItems, 0u);
}

} // namespace
