//===- tests/incremental_test.cpp - Transactional re-solve units ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Unit coverage for transactional incremental re-solve: the fact-delta
// language (exact-edit semantics, entity append-only rule, wide-predicate
// flags), the incremental solver's equivalence with a cold solve of the
// edited facts (additions, provenance-based removal invalidation, the
// damage-budget and wide fallbacks, the Datalog full-re-solve entry
// point), the crash-safe journal (checksummed records, torn-tail
// truncation, committed-transaction folding, recovery aborts, journal
// discard on fingerprint mismatch), and the in-process service
// transaction verbs (epoch publication, abort byte-identity, guard
// rails, sabotaged certification). The out-of-process SIGKILL loop lives
// in crashloop.sh --delta (ctest: delta_chaos).
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "serve/Delta.h"
#include "serve/Service.h"
#include "serve/Txn.h"
#include "serve/Wire.h"
#include "verify/Verify.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace ctp;
using namespace ctp::serve;

namespace {

/// The shared base workload: extracted once, copied per test (FactDB is
/// plain data, cheap to copy next to a solve).
const facts::FactDB &baseDB() {
  static const facts::FactDB DB =
      facts::extract(workload::generatePreset("antlr"));
  return DB;
}

ctx::Config config() {
  ctx::Config Cfg;
  EXPECT_TRUE(ctx::configByName("2-object+H",
                                ctx::Abstraction::TransformerString, Cfg));
  return Cfg;
}

bool hasAssign(const facts::FactDB &DB, facts::Id From, facts::Id To) {
  for (const auto &F : DB.Assigns)
    if (F.From == From && F.To == To)
      return true;
  return false;
}

/// An assign edge absent from the base facts, as delta-op operand text.
std::string freshAssignArgs() {
  const facts::FactDB &DB = baseDB();
  for (facts::Id A = 0; A < DB.numVars() && A < 24; ++A)
    for (facts::Id B = 0; B < DB.numVars() && B < 24; ++B)
      if (A != B && !hasAssign(DB, A, B))
        return DB.VarNames[A] + " " + DB.VarNames[B];
  ADD_FAILURE() << "no absent assign edge among the first 24 variables";
  return "";
}

/// An assign edge present in the base facts, as delta-op operand text.
std::string existingAssignArgs() {
  const facts::FactDB &DB = baseDB();
  EXPECT_FALSE(DB.Assigns.empty());
  return DB.VarNames[DB.Assigns.front().From] + " " +
         DB.VarNames[DB.Assigns.front().To];
}

std::string tempDir() {
  std::string Tmpl = "/tmp/ctp_incr_XXXXXX";
  char *D = ::mkdtemp(Tmpl.data());
  EXPECT_NE(D, nullptr);
  return D ? D : "";
}

void removeTree(const std::string &Dir) {
  std::string Cmd = "rm -rf '" + Dir + "'";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
}

} // namespace

//===----------------------------------------------------------------------===//
// The fact-delta language.
//===----------------------------------------------------------------------===//

TEST(DeltaLanguage, AddThenRemoveRestoresTheDatabase) {
  facts::FactDB DB = baseDB();
  const std::uint64_t Fp0 = DB.fingerprint();
  const std::size_t N0 = DB.Assigns.size();
  std::string Args = freshAssignArgs();
  analysis::InputDelta D;
  EXPECT_EQ(applyDeltaOp("add assign " + Args, DB, D), "");
  EXPECT_EQ(DB.Assigns.size(), N0 + 1);
  ASSERT_EQ(D.AddAssigns.size(), 1u);
  EXPECT_NE(DB.fingerprint(), Fp0);
  EXPECT_EQ(applyDeltaOp("rm assign " + Args, DB, D), "");
  EXPECT_EQ(DB.Assigns.size(), N0);
  ASSERT_EQ(D.RmAssigns.size(), 1u);
  EXPECT_EQ(DB.fingerprint(), Fp0);
  EXPECT_EQ(DB.validate(), "");
}

TEST(DeltaLanguage, ExactEditSemanticsRejectNoOps) {
  facts::FactDB DB = baseDB();
  const std::uint64_t Fp0 = DB.fingerprint();
  analysis::InputDelta D;
  // A duplicate add and a missing rm both name the offending row.
  EXPECT_NE(applyDeltaOp("add assign " + existingAssignArgs(), DB, D), "");
  EXPECT_NE(applyDeltaOp("rm assign " + freshAssignArgs(), DB, D), "");
  // Unknown names, predicates, and arities are rejected up front.
  EXPECT_NE(applyDeltaOp("add assign no.such.var " +
                             DB.VarNames[0],
                         DB, D),
            "");
  EXPECT_NE(applyDeltaOp("add frobnicate a b", DB, D), "");
  EXPECT_NE(applyDeltaOp("add assign " + DB.VarNames[0], DB, D), "");
  EXPECT_NE(applyDeltaOp("", DB, D), "");
  // All-or-nothing: nothing above touched the database or the summary.
  EXPECT_EQ(DB.fingerprint(), Fp0);
  EXPECT_FALSE(D.solverVisible());
}

TEST(DeltaLanguage, EntitiesAreAppendOnly) {
  facts::FactDB DB = baseDB();
  analysis::InputDelta D;
  const std::size_t Vars0 = DB.numVars();
  std::string Method = DB.MethodNames[0];
  EXPECT_EQ(applyDeltaOp("add entity var brand.new/v " + Method, DB, D),
            "");
  EXPECT_EQ(DB.numVars(), Vars0 + 1);
  EXPECT_EQ(DB.VarParent.size(), DB.numVars());
  // The new variable is immediately usable in later ops of the delta.
  EXPECT_EQ(applyDeltaOp("add assign " + DB.VarNames[0] + " brand.new/v",
                         DB, D),
            "");
  // Duplicate names and entity removal do not exist.
  EXPECT_NE(applyDeltaOp("add entity var brand.new/v " + Method, DB, D),
            "");
  EXPECT_NE(applyDeltaOp("rm entity var brand.new/v " + Method, DB, D),
            "");
  EXPECT_EQ(DB.validate(), "");
}

TEST(DeltaLanguage, WidePredicatesRaiseTheConservativeFlags) {
  facts::FactDB DB = baseDB();
  analysis::InputDelta D;
  ASSERT_FALSE(DB.HeapTypes.empty());
  const auto &HT = DB.HeapTypes.front();
  std::string Args =
      DB.HeapNames[HT.Heap] + " " + DB.TypeNames[HT.Type];
  EXPECT_FALSE(D.WideRemove);
  EXPECT_EQ(applyDeltaOp("rm heap_type " + Args, DB, D), "");
  EXPECT_TRUE(D.WideRemove);
  EXPECT_EQ(applyDeltaOp("add heap_type " + Args, DB, D), "");
  EXPECT_TRUE(D.WideAdd);
  // Taint annotations are solver-invisible but flag the client layer.
  EXPECT_FALSE(D.ClientFactsChanged);
  ASSERT_FALSE(DB.InvokeNames.empty());
  EXPECT_EQ(applyDeltaOp("add sanitizer " + DB.InvokeNames[0], DB, D),
            "");
  EXPECT_TRUE(D.ClientFactsChanged);
  EXPECT_FALSE(D.solverVisible() && !D.WideAdd && !D.WideRemove);
}

TEST(DeltaLanguage, OpListsStopAtTheFirstFailure) {
  facts::FactDB DB = baseDB();
  analysis::InputDelta D;
  std::vector<std::string> Ops = {"add assign " + freshAssignArgs(),
                                  "add frobnicate a b"};
  std::string Err = applyDeltaOps(Ops, DB, D);
  EXPECT_NE(Err.find("op 2:"), std::string::npos) << Err;
  // The first op stays applied — journal replay treats this as fatal.
  EXPECT_EQ(D.AddAssigns.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Incremental re-solve vs. a cold solve of the edited facts.
//===----------------------------------------------------------------------===//

namespace {

/// Solves the base facts once with provenance, for every incremental
/// test to re-solve from.
const analysis::Results &convergedBase() {
  static const analysis::Results R = [] {
    analysis::SolverOptions SO;
    SO.Provenance.Enabled = true;
    return analysis::solve(baseDB(), config(), SO);
  }();
  EXPECT_EQ(R.Stat.Term, TerminationReason::Converged);
  EXPECT_NE(R.Prov, nullptr);
  return R;
}

/// Requires the outcome to serialize exactly like a cold solve of the
/// edited database.
void expectColdEquivalent(const facts::FactDB &Edited,
                          const analysis::IncrementalOutcome &Out) {
  ASSERT_EQ(Out.R.Stat.Term, TerminationReason::Converged);
  analysis::Results Cold = analysis::solve(Edited, config());
  std::string CE;
  EXPECT_TRUE(verify::diffLines(verify::canonicalLines(Edited, Cold),
                                "cold", verify::canonicalLines(Edited, Out.R),
                                "incremental", CE))
      << CE;
}

} // namespace

TEST(IncrementalSolve, AdditionContinuesToTheColdFixpoint) {
  facts::FactDB Edited = baseDB();
  analysis::InputDelta D;
  ASSERT_EQ(applyDeltaOp("add assign " + freshAssignArgs(), Edited, D), "");
  analysis::IncrementalOutcome Out =
      analysis::resolveIncremental(Edited, config(), convergedBase(), D);
  EXPECT_TRUE(Out.Incremental) << Out.FallbackReason;
  expectColdEquivalent(Edited, Out);
}

TEST(IncrementalSolve, RemovalInvalidatesAndRederives) {
  facts::FactDB Edited = baseDB();
  analysis::InputDelta D;
  ASSERT_EQ(applyDeltaOp("rm assign " + existingAssignArgs(), Edited, D),
            "");
  analysis::IncrementalOptions IO;
  IO.MaxDamageRatio = -1.0; // Never bail to cold: exercise DRed itself.
  analysis::IncrementalOutcome Out = analysis::resolveIncremental(
      Edited, config(), convergedBase(), D, IO);
  EXPECT_TRUE(Out.Incremental) << Out.FallbackReason;
  expectColdEquivalent(Edited, Out);
}

TEST(IncrementalSolve, ResultRecertifiesUnderClosureAndSupport) {
  facts::FactDB Edited = baseDB();
  analysis::InputDelta D;
  ASSERT_EQ(applyDeltaOp("add assign " + freshAssignArgs(), Edited, D), "");
  ASSERT_EQ(applyDeltaOp("rm assign " + existingAssignArgs(), Edited, D),
            "");
  analysis::IncrementalOptions IO;
  IO.MaxDamageRatio = -1.0;
  analysis::IncrementalOutcome Out = analysis::resolveIncremental(
      Edited, config(), convergedBase(), D, IO);
  std::string CE;
  EXPECT_TRUE(verify::checkClosure(Edited, Out.R, verify::ClosureOptions(),
                                   CE))
      << CE;
  ASSERT_NE(Out.R.Prov, nullptr);
  EXPECT_TRUE(verify::checkSupport(Edited, Out.R, CE)) << CE;
}

TEST(IncrementalSolve, WideRemovalFallsBackToAColdSolve) {
  facts::FactDB Edited = baseDB();
  analysis::InputDelta D;
  ASSERT_FALSE(Edited.HeapTypes.empty());
  const auto HT = Edited.HeapTypes.front();
  ASSERT_EQ(applyDeltaOp("rm heap_type " + Edited.HeapNames[HT.Heap] +
                             " " + Edited.TypeNames[HT.Type],
                         Edited, D),
            "");
  analysis::IncrementalOutcome Out =
      analysis::resolveIncremental(Edited, config(), convergedBase(), D);
  EXPECT_FALSE(Out.Incremental);
  EXPECT_NE(Out.FallbackReason, "");
  expectColdEquivalent(Edited, Out);
}

TEST(IncrementalSolve, DamageBudgetBoundsTheIncrementalPath) {
  facts::FactDB Edited = baseDB();
  analysis::InputDelta D;
  ASSERT_EQ(applyDeltaOp("rm assign " + existingAssignArgs(), Edited, D),
            "");
  analysis::IncrementalOptions IO;
  IO.MaxDamageRatio = 0.0; // Any invalidation at all exceeds the budget.
  analysis::IncrementalOutcome Out = analysis::resolveIncremental(
      Edited, config(), convergedBase(), D, IO);
  EXPECT_FALSE(Out.Incremental);
  EXPECT_NE(Out.FallbackReason.find("damage"), std::string::npos)
      << Out.FallbackReason;
  expectColdEquivalent(Edited, Out);
}

TEST(IncrementalSolve, DatalogEntryPointIsAnHonestFullResolve) {
  facts::FactDB Edited = baseDB();
  analysis::InputDelta D;
  ASSERT_EQ(applyDeltaOp("add assign " + freshAssignArgs(), Edited, D), "");
  analysis::IncrementalOutcome Out = analysis::resolveIncrementalViaDatalog(
      Edited, config(), convergedBase(), D);
  EXPECT_FALSE(Out.Incremental);
  EXPECT_NE(Out.FallbackReason, "");
  expectColdEquivalent(Edited, Out);
}

//===----------------------------------------------------------------------===//
// The crash-safe journal.
//===----------------------------------------------------------------------===//

TEST(Journal, RecordsRoundTripAndRejectTampering) {
  JournalRecord B;
  B.K = JournalRecord::Kind::Begin;
  B.Tx = "t3";
  B.Epoch = 2;
  B.Fp = 0xdeadbeefcafef00dull;
  std::string Line = renderRecord(B);
  JournalRecord Back;
  ASSERT_TRUE(parseRecord(Line, Back));
  EXPECT_EQ(Back.K, B.K);
  EXPECT_EQ(Back.Tx, B.Tx);
  EXPECT_EQ(Back.Epoch, B.Epoch);
  EXPECT_EQ(Back.Fp, B.Fp);
  // Any flipped byte breaks the checksum; a reshuffled field count or a
  // bogus kind breaks the parse.
  std::string Tampered = Line;
  Tampered[0] = 'x';
  EXPECT_FALSE(parseRecord(Tampered, Back));
  Tampered = Line;
  Tampered[Tampered.find("t3") + 1] = '9';
  EXPECT_FALSE(parseRecord(Tampered, Back));
  EXPECT_FALSE(parseRecord("", Back));
  EXPECT_FALSE(parseRecord("begin\tt1", Back));

  JournalRecord Op;
  Op.K = JournalRecord::Kind::Op;
  Op.Tx = "t3";
  Op.Text = "add assign a\tb\nmore"; // Flattened to stay one line.
  std::string OpLine = renderRecord(Op);
  EXPECT_EQ(OpLine.find('\n'), std::string::npos);
  ASSERT_TRUE(parseRecord(OpLine, Back));
  EXPECT_EQ(Back.Text, "add assign a b more");
}

TEST(Journal, ScanStopsAtATornTail) {
  std::string Dir = tempDir();
  std::string Path = Dir + "/j";
  JournalRecord B;
  B.K = JournalRecord::Kind::Begin;
  B.Tx = "t1";
  B.Fp = baseDB().fingerprint();
  ASSERT_EQ(appendRecord(Path, B), "");
  JournalScan S;
  ASSERT_EQ(scanJournal(Path, S), "");
  ASSERT_EQ(S.Records.size(), 1u);
  EXPECT_TRUE(S.Exists);
  EXPECT_FALSE(S.TornTail);
  const std::uint64_t Good = S.GoodBytes;

  // A SIGKILL mid-append leaves a partial, unterminated line.
  {
    std::ofstream F(Path, std::ios::app | std::ios::binary);
    F << "commit\tt1\t1\tdead";
  }
  ASSERT_EQ(scanJournal(Path, S), "");
  ASSERT_EQ(S.Records.size(), 1u);
  EXPECT_TRUE(S.TornTail);
  EXPECT_EQ(S.GoodBytes, Good);

  // A missing journal is a successful empty scan, not an error.
  ASSERT_EQ(scanJournal(Dir + "/absent", S), "");
  EXPECT_FALSE(S.Exists);
  EXPECT_TRUE(S.Records.empty());
  removeTree(Dir);
}

namespace {

/// Appends a full committed transaction (begin/op/commit) for the given
/// delta op lines, returning the edited database's fingerprint.
std::uint64_t journalCommittedTxn(const std::string &Path,
                                  const std::string &Tx,
                                  std::uint64_t BaseEpoch,
                                  facts::FactDB &DB,
                                  const std::vector<std::string> &Ops) {
  JournalRecord R;
  R.K = JournalRecord::Kind::Begin;
  R.Tx = Tx;
  R.Epoch = BaseEpoch;
  R.Fp = DB.fingerprint();
  EXPECT_EQ(appendRecord(Path, R), "");
  analysis::InputDelta D;
  for (const std::string &Op : Ops) {
    R.K = JournalRecord::Kind::Op;
    R.Text = Op;
    EXPECT_EQ(appendRecord(Path, R), "");
    EXPECT_EQ(applyDeltaOp(Op, DB, D), "");
  }
  R.K = JournalRecord::Kind::Commit;
  R.Epoch = BaseEpoch + 1;
  R.Fp = DB.fingerprint();
  R.Text.clear();
  EXPECT_EQ(appendRecord(Path, R), "");
  return R.Fp;
}

} // namespace

TEST(Journal, ReplayFoldsCommittedTransactions) {
  std::string Dir = tempDir();
  std::string Path = Dir + "/j";
  facts::FactDB Edited = baseDB();
  std::string Add = "add assign " + freshAssignArgs();
  std::string Rm = "rm assign " + existingAssignArgs();
  std::uint64_t Fp1 = journalCommittedTxn(Path, "t1", 0, Edited, {Add});
  std::uint64_t Fp2 = journalCommittedTxn(Path, "t2", 1, Edited, {Rm});
  EXPECT_NE(Fp1, Fp2);

  facts::FactDB Replayed = baseDB();
  ReplayOutcome RO;
  ASSERT_EQ(replayJournal(Path, Replayed, RO), "");
  EXPECT_FALSE(RO.DiscardedJournal);
  EXPECT_EQ(RO.Epoch, 2u);
  EXPECT_EQ(RO.CommittedTxns, 2u);
  EXPECT_EQ(RO.NextTxnSeq, 3u);
  EXPECT_EQ(RO.RecoveryAbortTx, "");
  EXPECT_EQ(Replayed.fingerprint(), Fp2);
  removeTree(Dir);
}

TEST(Journal, ReplayTruncatesATornTailDurably) {
  std::string Dir = tempDir();
  std::string Path = Dir + "/j";
  facts::FactDB Edited = baseDB();
  std::uint64_t Fp =
      journalCommittedTxn(Path, "t1", 0, Edited,
                          {"add assign " + freshAssignArgs()});
  {
    std::ofstream F(Path, std::ios::app | std::ios::binary);
    F << "begin\tt2\t1\t01"; // Torn mid-append by the "crash".
  }
  facts::FactDB Replayed = baseDB();
  ReplayOutcome RO;
  ASSERT_EQ(replayJournal(Path, Replayed, RO), "");
  EXPECT_EQ(RO.Epoch, 1u);
  EXPECT_EQ(Replayed.fingerprint(), Fp);
  // The torn bytes are gone from disk, not merely skipped.
  JournalScan S;
  ASSERT_EQ(scanJournal(Path, S), "");
  EXPECT_FALSE(S.TornTail);
  EXPECT_EQ(S.Records.size(), 3u);
  removeTree(Dir);
}

TEST(Journal, ReplayRecoveryAbortsAnOpenTransaction) {
  std::string Dir = tempDir();
  std::string Path = Dir + "/j";
  JournalRecord R;
  R.K = JournalRecord::Kind::Begin;
  R.Tx = "t1";
  R.Epoch = 0;
  R.Fp = baseDB().fingerprint();
  ASSERT_EQ(appendRecord(Path, R), "");
  R.K = JournalRecord::Kind::Op;
  R.Text = "add assign " + freshAssignArgs();
  ASSERT_EQ(appendRecord(Path, R), "");

  facts::FactDB Replayed = baseDB();
  ReplayOutcome RO;
  ASSERT_EQ(replayJournal(Path, Replayed, RO), "");
  EXPECT_EQ(RO.Epoch, 0u);
  EXPECT_EQ(RO.RecoveryAbortTx, "t1");
  EXPECT_EQ(RO.NextTxnSeq, 2u);
  // The buffered op never touched the database.
  EXPECT_EQ(Replayed.fingerprint(), baseDB().fingerprint());
  // The abort is durable: a second replay finds a closed journal.
  facts::FactDB Again = baseDB();
  ReplayOutcome RO2;
  ASSERT_EQ(replayJournal(Path, Again, RO2), "");
  EXPECT_EQ(RO2.RecoveryAbortTx, "");
  EXPECT_EQ(RO2.Epoch, 0u);
  JournalScan S;
  ASSERT_EQ(scanJournal(Path, S), "");
  ASSERT_FALSE(S.Records.empty());
  EXPECT_EQ(S.Records.back().K, JournalRecord::Kind::Aborted);
  removeTree(Dir);
}

TEST(Journal, FingerprintMismatchDiscardsTheWholeJournal) {
  std::string Dir = tempDir();
  std::string Path = Dir + "/j";
  JournalRecord R;
  R.K = JournalRecord::Kind::Begin;
  R.Tx = "t1";
  R.Epoch = 0;
  R.Fp = baseDB().fingerprint() + 1; // A different facts directory.
  ASSERT_EQ(appendRecord(Path, R), "");

  facts::FactDB Replayed = baseDB();
  ReplayOutcome RO;
  ASSERT_EQ(replayJournal(Path, Replayed, RO), "");
  EXPECT_TRUE(RO.DiscardedJournal);
  EXPECT_FALSE(RO.Warnings.empty());
  EXPECT_EQ(::access((Path + ".stale").c_str(), F_OK), 0);
  EXPECT_NE(::access(Path.c_str(), F_OK), 0);
  removeTree(Dir);
}

//===----------------------------------------------------------------------===//
// Service transactions (in-process).
//===----------------------------------------------------------------------===//

namespace {

Request req(const std::string &Payload) {
  Request Q;
  EXPECT_EQ(parseRequest(Payload, Q), "");
  return Q;
}

/// A transactional service over a throwaway checkpoint directory.
struct TxnService {
  std::string Dir = tempDir();
  Service S;
  TxnService()
      : S([this] {
          ServiceOptions O;
          O.Preset = "antlr";
          O.ConfigName = "2-object+H";
          O.CheckpointDir = Dir;
          return O;
        }()) {
    EXPECT_EQ(S.init(), "");
  }
  ~TxnService() { removeTree(Dir); }
  Response ask(const std::string &Payload) { return S.answer(req(Payload)); }
};

} // namespace

TEST(ServiceTxn, CommitPublishesANewCertifiedEpoch) {
  TxnService T;
  EXPECT_EQ(T.S.epoch(), 0u);
  Response Pre = T.ask("1\tpts\t" + baseDB().VarNames[0]);
  EXPECT_EQ(Pre.Epoch, 0u);

  Response Begin = T.ask("2\tbegin");
  ASSERT_EQ(Begin.Status, StatusOk) << Begin.Body;
  EXPECT_EQ(Begin.Body, "t1");
  std::string Args = freshAssignArgs();
  Args[Args.find(' ')] = '\t';
  Response Op = T.ask("3\tdelta\tadd\tassign\t" + Args);
  ASSERT_EQ(Op.Status, StatusOk) << Op.Body;
  Response Stat = T.ask("4\ttxstat");
  EXPECT_NE(Stat.Body.find("open=t1"), std::string::npos) << Stat.Body;
  EXPECT_NE(Stat.Body.find("staged_ops=1"), std::string::npos) << Stat.Body;

  Response Commit = T.ask("5\tcommit");
  ASSERT_EQ(Commit.Status, StatusOk) << Commit.Body;
  EXPECT_EQ(Commit.Epoch, 1u);
  EXPECT_NE(Commit.Body.find("committed"), std::string::npos)
      << Commit.Body;
  // A cold-started service keeps its provenance graph, so an add-only
  // delta must take the incremental path, not a full re-solve.
  EXPECT_NE(Commit.Body.find("incremental"), std::string::npos)
      << Commit.Body;
  EXPECT_EQ(T.S.epoch(), 1u);
  // Every subsequent answer is stamped with the committed epoch.
  EXPECT_EQ(T.ask("6\tping").Epoch, 1u);
  Response Stat2 = T.ask("7\ttxstat");
  EXPECT_NE(Stat2.Body.find("epoch=1"), std::string::npos) << Stat2.Body;
  EXPECT_NE(Stat2.Body.find("open=-"), std::string::npos) << Stat2.Body;
}

TEST(ServiceTxn, AbortLeavesAnswersByteIdentical) {
  TxnService T;
  std::vector<std::string> Batch;
  for (std::size_t I = 0; I < 8 && I < baseDB().numVars(); ++I)
    Batch.push_back("pts\t" + baseDB().VarNames[I]);
  auto Render = [&] {
    std::string Out;
    int Id = 10;
    for (const std::string &Q : Batch)
      Out += renderResponse(
                 T.ask(std::to_string(Id++) + "\t" + Q)) +
             "\n";
    return Out;
  };
  std::string Before = Render();
  ASSERT_EQ(T.ask("1\tbegin").Status, StatusOk);
  std::string Args = freshAssignArgs();
  Args[Args.find(' ')] = '\t';
  ASSERT_EQ(T.ask("2\tdelta\tadd\tassign\t" + Args).Status, StatusOk);
  Response Abort = T.ask("3\tabort");
  EXPECT_EQ(Abort.Status, StatusOk);
  EXPECT_EQ(Abort.Body, "aborted");
  EXPECT_EQ(Abort.Epoch, 0u);
  EXPECT_EQ(Render(), Before);
}

TEST(ServiceTxn, GuardsRefuseBadSequences) {
  TxnService T;
  EXPECT_EQ(T.ask("1\tcommit").Status, StatusError);
  EXPECT_EQ(T.ask("2\tabort").Status, StatusError);
  EXPECT_EQ(T.ask("3\tdelta\tadd\tassign\ta\tb").Status, StatusError);
  ASSERT_EQ(T.ask("4\tbegin").Status, StatusOk);
  EXPECT_EQ(T.ask("5\tbegin").Status, StatusError); // One at a time.
  // A rejected op leaves the transaction open and the stage count flat.
  EXPECT_EQ(T.ask("6\tdelta\tadd\tassign\tno.such\tno.such").Status,
            StatusError);
  Response Stat = T.ask("7\ttxstat");
  EXPECT_NE(Stat.Body.find("staged_ops=0"), std::string::npos)
      << Stat.Body;
  EXPECT_EQ(T.ask("8\tabort").Status, StatusOk);
}

TEST(ServiceTxn, TransactionsRequireACheckpointDirectory) {
  ServiceOptions O;
  O.Preset = "antlr";
  O.ConfigName = "2-object+H";
  Service S(std::move(O));
  ASSERT_EQ(S.init(), "");
  Response R = S.answer(req("1\tbegin"));
  EXPECT_EQ(R.Status, StatusError);
  EXPECT_NE(R.Body.find("checkpoint-dir"), std::string::npos) << R.Body;
  // txstat stays answerable — it is a read, not a mutation.
  EXPECT_EQ(S.answer(req("2\ttxstat")).Status, StatusOk);
}

TEST(ServiceTxn, SabotagedCertificationAbortsTheCommit) {
  TxnService T;
  ASSERT_EQ(T.ask("1\tbegin").Status, StatusOk);
  std::string Args = freshAssignArgs();
  Args[Args.find(' ')] = '\t';
  ASSERT_EQ(T.ask("2\tdelta\tadd\tassign\t" + Args).Status, StatusOk);
  ASSERT_EQ(::setenv("CTP_TXN_SABOTAGE", "certify", 1), 0);
  Response Commit = T.ask("3\tcommit");
  ASSERT_EQ(::unsetenv("CTP_TXN_SABOTAGE"), 0);
  EXPECT_EQ(Commit.Status, StatusTxnAborted) << Commit.Body;
  EXPECT_EQ(Commit.Epoch, 0u);
  EXPECT_EQ(T.S.epoch(), 0u);
  // The failed transaction is gone; a clean retry commits normally.
  ASSERT_EQ(T.ask("4\tbegin").Status, StatusOk);
  ASSERT_EQ(T.ask("5\tdelta\tadd\tassign\t" + Args).Status, StatusOk);
  Response Retry = T.ask("6\tcommit");
  EXPECT_EQ(Retry.Status, StatusOk) << Retry.Body;
  EXPECT_EQ(Retry.Epoch, 1u);
}
