//===- tests/clients_test.cpp - Downstream client tests -------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "clients/Alias.h"
#include "clients/Devirtualize.h"
#include "clients/Reachability.h"
#include "facts/Extract.h"
#include "ir/Builder.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;

namespace {

TEST(DevirtTest, Figure1AllSitesMonomorphic) {
  workload::Figure1Program F = workload::figure1();
  facts::FactDB DB = facts::extract(F.P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::TransformerString));
  clients::DevirtSummary S = clients::devirtualize(DB, R);
  EXPECT_EQ(S.VirtualSites, 7u);
  EXPECT_EQ(S.ReachedSites, 7u);
  // Only class T implements id/id2/m: every site has one target.
  EXPECT_EQ(S.MonomorphicSites, 7u);
  EXPECT_EQ(S.PolymorphicSites, 0u);
}

TEST(DevirtTest, PolymorphicReceiverDetected) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Base = B.addClass("Base", Obj, /*IsAbstract=*/true);
  TypeId D1 = B.addClass("D1", Base);
  TypeId D2 = B.addClass("D2", Base);
  MethodId Op1 = B.addMethod(D1, "op", 0);
  B.addReturn(Op1, B.thisVar(Op1));
  MethodId Op2 = B.addMethod(D2, "op", 0);
  B.addReturn(Op2, B.thisVar(Op2));
  SigId Op = B.signature("op", 0);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId Recv = B.addLocal(Main, "recv");
  B.addNew(Main, Recv, D1, "h1");
  B.addNew(Main, Recv, D2, "h2");
  VarId Out = B.addLocal(Main, "out");
  B.addVirtualCall(Main, Recv, Op, {}, Out, "c0");
  facts::FactDB DB = facts::extract(B.take());

  analysis::Results R =
      analysis::solve(DB, ctx::oneObject(Abstraction::ContextString));
  clients::DevirtSummary S = clients::devirtualize(DB, R);
  EXPECT_EQ(S.ReachedSites, 1u);
  EXPECT_EQ(S.PolymorphicSites, 1u);
  ASSERT_EQ(S.PerSite.size(), 1u);
  EXPECT_EQ(S.PerSite[0].Targets.size(), 2u);
}

/// A program with one monomorphic site, one polymorphic site, and one
/// virtual site inside a dead method that no configuration can reach.
ir::Program devirtClassificationProgram() {
  Builder B;
  TypeId Obj = B.addClass("Object");
  TypeId Base = B.addClass("Base", Obj, /*IsAbstract=*/true);
  TypeId D1 = B.addClass("D1", Base);
  TypeId D2 = B.addClass("D2", Base);
  MethodId Op1 = B.addMethod(D1, "op", 0);
  B.addReturn(Op1, B.thisVar(Op1));
  MethodId Op2 = B.addMethod(D2, "op", 0);
  B.addReturn(Op2, B.thisVar(Op2));
  SigId Op = B.signature("op", 0);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  // Monomorphic: only D1 flows into this receiver.
  VarId Mono = B.addLocal(Main, "mono");
  B.addNew(Main, Mono, D1, "h_mono");
  B.addVirtualCall(Main, Mono, Op, {}, InvalidId, "c_mono");
  // Polymorphic: D1 and D2 both flow.
  VarId Poly = B.addLocal(Main, "poly");
  B.addNew(Main, Poly, D1, "h_p1");
  B.addNew(Main, Poly, D2, "h_p2");
  B.addVirtualCall(Main, Poly, Op, {}, InvalidId, "c_poly");
  // Unreachable: the enclosing method is never called, so the site gets
  // no call-graph targets under ANY configuration.
  MethodId Dead = B.addStaticMethod(Obj, "dead", 0);
  VarId DR = B.addLocal(Dead, "dr");
  B.addNew(Dead, DR, D2, "h_dead");
  B.addVirtualCall(Dead, DR, Op, {}, InvalidId, "c_dead");
  return B.take();
}

TEST(DevirtTest, ClassificationStableAcrossContextConfigurations) {
  facts::FactDB DB = facts::extract(devirtClassificationProgram());
  // The classification is a property of the program here, not of the
  // context abstraction: every configuration must agree.
  const ctx::Config Configs[] = {
      ctx::insensitive(Abstraction::TransformerString),
      ctx::oneCall(Abstraction::ContextString),
      ctx::twoObjectH(Abstraction::TransformerString),
  };
  for (const ctx::Config &Cfg : Configs) {
    analysis::Results R = analysis::solve(DB, Cfg);
    clients::DevirtSummary S = clients::devirtualize(DB, R);
    EXPECT_EQ(S.VirtualSites, 3u) << Cfg.name();
    // c_dead never acquires targets: reached < total.
    EXPECT_EQ(S.ReachedSites, 2u) << Cfg.name();
    EXPECT_EQ(S.MonomorphicSites, 1u) << Cfg.name();
    EXPECT_EQ(S.PolymorphicSites, 1u) << Cfg.name();
    ASSERT_EQ(S.PerSite.size(), 2u) << Cfg.name();
    // PerSite is ordered by invoke id and holds only reached sites.
    EXPECT_EQ(S.PerSite[0].Targets.size(), 1u) << Cfg.name();
    EXPECT_EQ(S.PerSite[1].Targets.size(), 2u) << Cfg.name();
  }
}

TEST(AliasTest, Figure1AliasRelations) {
  workload::Figure1Program F = workload::figure1();
  facts::FactDB DB = facts::extract(F.P);
  // 2-call+H separates the two id() calls on the shared receiver r
  // (object sensitivity cannot — both calls dispatch on h3).
  analysis::Results Precise = analysis::solve(
      DB, ctx::Config{Abstraction::TransformerString,
                      ctx::Flavour::CallSite, 2, 1});
  clients::AliasOracle A(Precise);
  // x and x1 both point to h1 — aliased.
  EXPECT_TRUE(A.mayAlias(F.X, F.X1));
  // x1 (h1) and y1 (h2) are separated under 2-call.
  EXPECT_FALSE(A.mayAlias(F.X1, F.Y1));
  // a and b point to m1 objects with distinct heap contexts, but the CI
  // alias query merges contexts: they still may-alias on heap site m1.
  EXPECT_TRUE(A.mayAlias(F.A, F.B));

  analysis::Results Coarse =
      analysis::solve(DB, ctx::insensitive(Abstraction::ContextString));
  clients::AliasOracle C(Coarse);
  std::vector<std::uint32_t> Vars = {F.X1, F.Y1, F.X2, F.Y2};
  // Precision shows up as strictly fewer alias pairs.
  EXPECT_LT(A.countAliasPairs(Vars), C.countAliasPairs(Vars));
}

TEST(AliasTest, OutOfRangeVarIsEmpty) {
  workload::Figure7Program F = workload::figure7();
  facts::FactDB DB = facts::extract(F.P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCall(Abstraction::ContextString));
  clients::AliasOracle A(R);
  EXPECT_TRUE(A.pointsTo(99999).empty());
  EXPECT_FALSE(A.mayAlias(99999, F.V));
}

TEST(ReachabilityTest, DeadMethodsReported) {
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Dead = B.addStaticMethod(Obj, "dead", 0);
  MethodId Live = B.addStaticMethod(Obj, "live", 0);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  B.addStaticCall(Main, Live, {}, InvalidId, "c0");
  facts::FactDB DB = facts::extract(B.take());
  analysis::Results R =
      analysis::solve(DB, ctx::oneCall(Abstraction::TransformerString));
  clients::ReachabilitySummary S = clients::reachableMethods(DB, R);
  EXPECT_EQ(S.TotalMethods, 3u);
  EXPECT_EQ(S.ReachableMethods,
            (std::vector<std::uint32_t>{Live, Main}));
  EXPECT_EQ(S.DeadMethods, (std::vector<std::uint32_t>{Dead}));
}

} // namespace
