//===- tests/results_io_test.cpp - Result serialization -------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/ResultsIO.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "support/Tsv.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <filesystem>

using namespace ctp;
using ctx::Abstraction;

namespace {

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "/ctp_results_" + Tag;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

TEST(ResultsIOTest, WritesAllRelations) {
  facts::FactDB DB = facts::extract(workload::figure5().P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  std::string Dir = freshDir("fig5");
  ASSERT_EQ(analysis::writeResultsDir(DB, R, Dir), "");

  std::vector<std::vector<std::string>> Rows;
  ASSERT_TRUE(readTsvFile(Dir + "/Pts.tsv", Rows));
  EXPECT_EQ(Rows.size(), R.Stat.NumPts);
  // Each row: var name, heap name, rendered transformation with real
  // call-site names.
  bool SawId1Entry = false;
  for (const auto &Row : Rows) {
    ASSERT_EQ(Row.size(), 3u);
    SawId1Entry |= Row[2].find("id1") != std::string::npos;
  }
  EXPECT_TRUE(SawId1Entry);

  Rows.clear();
  ASSERT_TRUE(readTsvFile(Dir + "/Call.tsv", Rows));
  EXPECT_EQ(Rows.size(), R.Stat.NumCall);
  Rows.clear();
  ASSERT_TRUE(readTsvFile(Dir + "/Reach.tsv", Rows));
  EXPECT_EQ(Rows.size(), R.Stat.NumReach);
  Rows.clear();
  ASSERT_TRUE(readTsvFile(Dir + "/CiPts.tsv", Rows));
  EXPECT_EQ(Rows.size(), R.ciPts().size());
  std::filesystem::remove_all(Dir);
}

TEST(ResultsIOTest, ContextStringRenderingUsesNames) {
  facts::FactDB DB = facts::extract(workload::figure1().P);
  analysis::Results R =
      analysis::solve(DB, ctx::twoObjectH(Abstraction::ContextString));
  std::string Dir = freshDir("fig1cs");
  ASSERT_EQ(analysis::writeResultsDir(DB, R, Dir), "");
  std::vector<std::vector<std::string>> Rows;
  ASSERT_TRUE(readTsvFile(Dir + "/Pts.tsv", Rows));
  // Object-flavour elements render as heap-site names (h3/h4/h5 are the
  // receiver sites of Figure 1).
  bool SawHeapName = false;
  for (const auto &Row : Rows)
    SawHeapName |= Row[2].find("h4") != std::string::npos;
  EXPECT_TRUE(SawHeapName);
  std::filesystem::remove_all(Dir);
}

TEST(ResultsIOTest, MissingDirectoryFails) {
  facts::FactDB DB = facts::extract(workload::figure7().P);
  analysis::Results R =
      analysis::solve(DB, ctx::oneCall(Abstraction::ContextString));
  EXPECT_NE(analysis::writeResultsDir(DB, R, "/nonexistent/ctp/results"),
            "");
}

} // namespace
