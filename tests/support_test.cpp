//===- tests/support_test.cpp - Support library tests ---------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/BoundedVector.h"
#include "support/Hashing.h"
#include "support/Interner.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Tsv.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <string>

using namespace ctp;

namespace {

TEST(BoundedVectorTest, BasicOps) {
  BoundedVector<std::uint32_t, 4> V;
  EXPECT_TRUE(V.empty());
  V.push_back(10);
  V.push_back(20);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V[0], 10u);
  EXPECT_EQ(V.back(), 20u);
  V.pop_back();
  EXPECT_EQ(V.size(), 1u);
}

TEST(BoundedVectorTest, PrefixAndDrop) {
  BoundedVector<std::uint32_t, 4> V = {1, 2, 3};
  EXPECT_EQ(V.takePrefix(2), (BoundedVector<std::uint32_t, 4>{1, 2}));
  EXPECT_EQ(V.takePrefix(9), V);
  EXPECT_EQ(V.dropPrefix(1), (BoundedVector<std::uint32_t, 4>{2, 3}));
  EXPECT_EQ(V.dropPrefix(9), (BoundedVector<std::uint32_t, 4>{}));
}

TEST(BoundedVectorTest, EqualityIgnoresStalePastEnd) {
  BoundedVector<std::uint32_t, 4> A = {1, 2, 3};
  A.pop_back();
  BoundedVector<std::uint32_t, 4> B = {1, 2};
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(BoundedVectorTest, LexicographicOrder) {
  BoundedVector<std::uint32_t, 4> A = {1, 2};
  BoundedVector<std::uint32_t, 4> B = {1, 2, 0};
  BoundedVector<std::uint32_t, 4> C = {1, 3};
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(B < C);
  EXPECT_FALSE(C < A);
}

TEST(InternerTest, StableIdsAndLookup) {
  Interner<std::string> I;
  std::uint32_t A = I.intern("alpha");
  std::uint32_t B = I.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(I.intern("alpha"), A);
  EXPECT_EQ(I[A], "alpha");
  EXPECT_EQ(I.lookup("beta"), B);
  EXPECT_EQ(I.lookup("gamma"), UINT32_MAX);
  EXPECT_EQ(I.size(), 2u);
}

TEST(InternerTest, ManyValuesReferenceStability) {
  Interner<std::string> I;
  std::uint32_t First = I.intern("v0");
  const std::string &Ref = I[First];
  for (int K = 1; K < 1000; ++K)
    I.intern("v" + std::to_string(K));
  EXPECT_EQ(Ref, "v0"); // Deque storage keeps references valid.
  EXPECT_EQ(I.size(), 1000u);
}

TEST(RngTest, DeterministicStreams) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Diverged = false;
  Rng A2(42);
  for (int I = 0; I < 100; ++I)
    if (A2.next() != C.next())
      Diverged = true;
  EXPECT_TRUE(Diverged);
}

TEST(RngTest, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    std::uint64_t X = R.nextInRange(5, 8);
    EXPECT_GE(X, 5u);
    EXPECT_LE(X, 8u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(HashingTest, MixDistinguishesNeighbours) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(hashCombine(0, 1), hashCombine(1, 0));
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(TsvTest, SplitJoinRoundTrip) {
  std::vector<std::string> Fields = {"a", "", "b c", "d"};
  EXPECT_EQ(splitTsvLine(joinTsvLine(Fields)), Fields);
  EXPECT_EQ(splitTsvLine("solo"), std::vector<std::string>{"solo"});
}

TEST(TsvTest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/ctp_tsv_test.facts";
  std::vector<std::vector<std::string>> Rows = {
      {"x", "y"}, {"1", "2"}, {"hello world", "tab\\less"}};
  ASSERT_TRUE(writeTsvFile(Path, Rows));
  std::vector<std::vector<std::string>> Back;
  ASSERT_TRUE(readTsvFile(Path, Back));
  EXPECT_EQ(Back, Rows);
  std::remove(Path.c_str());
}

TEST(TsvTest, MissingFileFails) {
  std::vector<std::vector<std::string>> Rows;
  EXPECT_FALSE(readTsvFile("/nonexistent/path/file.facts", Rows));
}

} // namespace
