//===- tests/snapshot_test.cpp - Snapshot container + fingerprints --------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The crash-safety foundation: the sectioned snapshot container must give
// a reader back exactly the written bytes or a precise corruption
// diagnostic (never garbage, never a crash), the atomic writer must
// survive every injected crash point, and the FactDB fingerprint that
// gates resume must identify fact *content* independent of row order.
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkpoint.h"
#include "ctx/Domain.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/ExitCodes.h"
#include "support/FaultInjection.h"
#include "support/Snapshot.h"
#include "support/Tsv.h"
#include "workload/Generator.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace ctp;

namespace {

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "/ctp_snap_" + Tag;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

snapshot::File sampleFile() {
  snapshot::File F;
  snapshot::ByteWriter W;
  W.u32(7);
  W.u64(0xdeadbeefcafe);
  W.u32Vec({1, 2, 3, 4, 5});
  F.add(42).Bytes = W.take();
  snapshot::ByteWriter W2;
  W2.u32(99);
  F.add(43).Bytes = W2.take();
  F.T.Term = 2;
  F.T.Iterations = 10;
  F.T.Derivations = 1000;
  F.T.PendingWork = 55;
  return F;
}

TEST(SnapshotContainer, EncodeDecodeRoundTrip) {
  snapshot::File F = sampleFile();
  std::vector<std::uint8_t> Bytes = snapshot::encode(F);

  snapshot::File Back;
  ASSERT_EQ(snapshot::decode(Bytes.data(), Bytes.size(), Back), "");
  ASSERT_EQ(Back.Sections.size(), 2u);
  EXPECT_EQ(Back.Sections[0].Tag, 42u);
  EXPECT_EQ(Back.Sections[0].Bytes, F.Sections[0].Bytes);
  EXPECT_EQ(Back.Sections[1].Tag, 43u);
  EXPECT_EQ(Back.T.Term, 2u);
  EXPECT_EQ(Back.T.Iterations, 10u);
  EXPECT_EQ(Back.T.Derivations, 1000u);
  EXPECT_EQ(Back.T.PendingWork, 55u);

  const snapshot::Section *S = Back.find(42);
  ASSERT_NE(S, nullptr);
  snapshot::ByteReader R(S->Bytes);
  EXPECT_EQ(R.u32(), 7u);
  EXPECT_EQ(R.u64(), 0xdeadbeefcafeull);
  std::vector<std::uint32_t> V;
  ASSERT_TRUE(R.u32Vec(V));
  EXPECT_EQ(V, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Back.find(77), nullptr);
}

TEST(SnapshotContainer, BadMagicRejected) {
  std::vector<std::uint8_t> Bytes = snapshot::encode(sampleFile());
  Bytes[0] = 'X';
  snapshot::File Back;
  std::string Err = snapshot::decode(Bytes.data(), Bytes.size(), Back);
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
}

TEST(SnapshotContainer, BadVersionRejected) {
  // A file from a future format version is internally consistent — valid
  // whole-file checksum, unknown version — so patch the version byte and
  // recompute the trailing checksum.
  std::vector<std::uint8_t> Bytes = snapshot::encode(sampleFile());
  Bytes[8] = static_cast<std::uint8_t>(snapshot::FormatVersion + 1);
  std::uint64_t Sum = snapshot::fnv1a(Bytes.data(), Bytes.size() - 8);
  for (int I = 0; I < 8; ++I)
    Bytes[Bytes.size() - 8 + I] = static_cast<std::uint8_t>(Sum >> (8 * I));
  snapshot::File Back;
  std::string Err = snapshot::decode(Bytes.data(), Bytes.size(), Back);
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;
}

TEST(SnapshotContainer, EveryTruncationDetected) {
  std::vector<std::uint8_t> Bytes = snapshot::encode(sampleFile());
  // A crash can cut the file at any byte; every prefix must be rejected.
  for (std::size_t N = 0; N < Bytes.size(); ++N) {
    snapshot::File Back;
    EXPECT_NE(snapshot::decode(Bytes.data(), N, Back), "")
        << "truncation to " << N << " bytes accepted";
  }
}

TEST(SnapshotContainer, EmptyFileGetsItsOwnDiagnostic) {
  // A zero-byte snapshot (crash between truncate and first write, or a
  // foreign file) must be called out as empty — with advice — rather
  // than lumped in with torn writes.
  snapshot::File Back;
  std::string Err = snapshot::decode(nullptr, 0, Back);
  EXPECT_NE(Err.find("empty (0 bytes)"), std::string::npos) << Err;
  EXPECT_NE(Err.find("delete it and rerun cold"), std::string::npos)
      << Err;
  EXPECT_EQ(Err.find("truncated"), std::string::npos)
      << "empty file misreported as a truncation: " << Err;
}

TEST(SnapshotContainer, TruncatedHeaderReportsByteCounts) {
  std::vector<std::uint8_t> Bytes = snapshot::encode(sampleFile());
  // Cut inside the magic+trailer minimum: the diagnostic must say how
  // many header bytes arrived out of how many were needed, so the
  // operator can tell a torn write from an empty file at a glance.
  snapshot::File Back;
  std::string Err = snapshot::decode(Bytes.data(), 5, Back);
  EXPECT_NE(Err.find("truncated before the header ended"),
            std::string::npos)
      << Err;
  EXPECT_NE(Err.find("5 of 16"), std::string::npos) << Err;
  EXPECT_NE(Err.find("torn write"), std::string::npos) << Err;
}

TEST(SnapshotContainer, EmptyAndTruncatedFilesDiagnoseDistinctly) {
  // The two sub-header shapes must produce *different* diagnostics
  // through the whole readFile path, not just decode().
  std::string Dir = freshDir("empty_vs_torn");
  std::string EmptyPath = Dir + "/empty.snap";
  std::string TornPath = Dir + "/torn.snap";
  { std::ofstream Out(EmptyPath, std::ios::binary); }
  {
    std::ofstream Out(TornPath, std::ios::binary);
    Out << "CTPS"; // 4 of the 8 magic bytes.
  }
  snapshot::File Back;
  std::string EmptyErr = snapshot::readFile(EmptyPath, Back);
  std::string TornErr = snapshot::readFile(TornPath, Back);
  EXPECT_NE(EmptyErr, "");
  EXPECT_NE(TornErr, "");
  EXPECT_NE(EmptyErr, TornErr);
  EXPECT_NE(EmptyErr.find("empty"), std::string::npos) << EmptyErr;
  EXPECT_NE(TornErr.find("4 of 16"), std::string::npos) << TornErr;
}

TEST(SnapshotContainer, EveryBitFlipDetected) {
  std::vector<std::uint8_t> Bytes = snapshot::encode(sampleFile());
  // Silent media corruption: flip one bit anywhere; the checksums (or the
  // header checks) must notice.
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    std::vector<std::uint8_t> Bad = Bytes;
    Bad[I] ^= 0x04;
    snapshot::File Back;
    EXPECT_NE(snapshot::decode(Bad.data(), Bad.size(), Back), "")
        << "bit flip at byte " << I << " accepted";
  }
}

TEST(SnapshotContainer, PayloadFlipNamesChecksum) {
  snapshot::File F = sampleFile();
  std::vector<std::uint8_t> Bytes = snapshot::encode(F);
  // Flip inside the first section's payload (past magic+version+count and
  // the section header) and check the diagnostic mentions the checksum.
  std::size_t PayloadStart = 8 + 4 + 4 + (4 + 8 + 8);
  ASSERT_LT(PayloadStart, Bytes.size());
  Bytes[PayloadStart] ^= 0x10;
  snapshot::File Back;
  std::string Err = snapshot::decode(Bytes.data(), Bytes.size(), Back);
  EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;
}

TEST(SnapshotContainer, WriteReadFileRoundTrip) {
  std::string Dir = freshDir("file");
  std::string Path = Dir + "/s.ctpsnap";
  ASSERT_EQ(snapshot::writeFile(sampleFile(), Path), "");
  snapshot::File Back;
  EXPECT_EQ(snapshot::readFile(Path, Back), "");
  EXPECT_EQ(Back.Sections.size(), 2u);
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"));
  std::filesystem::remove_all(Dir);
}

TEST(SnapshotContainer, MissingFileReportsNoSnapshot) {
  snapshot::File Back;
  std::string Err = snapshot::readFile("/nonexistent/ctp/x.ctpsnap", Back);
  EXPECT_NE(Err.find("no snapshot"), std::string::npos) << Err;
}

TEST(SnapshotFaults, InjectedWriteFaultsAreDetectedOnRead) {
  std::string Dir = freshDir("faults");
  std::string Path = Dir + "/s.ctpsnap";
  for (fault::SnapshotFault F :
       {fault::SnapshotFault::TornWrite, fault::SnapshotFault::ShortWrite,
        fault::SnapshotFault::BitFlip}) {
    fault::reset();
    fault::armSnapshotFault(F);
    // The faulty write still reports success — that is the point: the
    // damage must be caught by the *reader*, not trusted to the writer.
    ASSERT_EQ(snapshot::writeFile(sampleFile(), Path), "");
    snapshot::File Back;
    EXPECT_NE(snapshot::readFile(Path, Back), "")
        << "fault " << static_cast<int>(F) << " went undetected";
    std::filesystem::remove(Path);
  }
  fault::reset();
  std::filesystem::remove_all(Dir);
}

TEST(SnapshotFaults, CrashBeforeRenamePreservesPreviousSnapshot) {
  std::string Dir = freshDir("rename");
  std::string Path = Dir + "/s.ctpsnap";
  ASSERT_EQ(snapshot::writeFile(sampleFile(), Path), "");

  snapshot::File Next = sampleFile();
  Next.T.Derivations = 2000; // distinguishable from the first write
  fault::reset();
  fault::armSnapshotFault(fault::SnapshotFault::CrashBeforeRename);
  ASSERT_EQ(snapshot::writeFile(Next, Path), "");
  fault::reset();

  // The "crashed" write never renamed; the previous snapshot is intact.
  snapshot::File Back;
  ASSERT_EQ(snapshot::readFile(Path, Back), "");
  EXPECT_EQ(Back.T.Derivations, 1000u);
  std::filesystem::remove_all(Dir);
}

TEST(SnapshotFaults, FaultIsOneShotUnlessSticky) {
  fault::reset();
  fault::armSnapshotFault(fault::SnapshotFault::BitFlip);
  EXPECT_TRUE(fault::takeSnapshotFault().has_value());
  EXPECT_FALSE(fault::takeSnapshotFault().has_value());

  fault::armSnapshotFault(fault::SnapshotFault::BitFlip, /*Sticky=*/true);
  EXPECT_TRUE(fault::takeSnapshotFault().has_value());
  EXPECT_TRUE(fault::takeSnapshotFault().has_value());
  fault::reset();
  EXPECT_FALSE(fault::takeSnapshotFault().has_value());
}

TEST(SnapshotFaults, ArmByNameCoversEveryFault) {
  fault::reset();
  EXPECT_TRUE(fault::armSnapshotFaultByName("torn"));
  EXPECT_TRUE(fault::armSnapshotFaultByName("short"));
  EXPECT_TRUE(fault::armSnapshotFaultByName("bitflip"));
  EXPECT_TRUE(fault::armSnapshotFaultByName("crash-before-rename"));
  EXPECT_FALSE(fault::armSnapshotFaultByName("meteor-strike"));
  fault::reset();
}

//===----------------------------------------------------------------------===//
// FactDB fingerprints (the resume gate).
//===----------------------------------------------------------------------===//

facts::FactDB testDB() {
  workload::WorkloadParams Params;
  Params.Drivers = 2;
  Params.Scenarios = 3;
  Params.Seed = 31;
  return facts::extract(workload::generate(Params));
}

TEST(Fingerprint, ReorderedTsvRowsFingerprintIdentically) {
  facts::FactDB DB = testDB();
  std::string Dir = freshDir("fp");
  ASSERT_EQ(facts::writeFactsDir(DB, Dir), "");
  facts::FactDB A;
  ASSERT_EQ(facts::readFactsDir(Dir, A), "");

  // Reverse the rows of a couple of fact files: same facts, new order.
  for (const char *File : {"/Assign.facts", "/Store.facts", "/Load.facts"}) {
    std::vector<std::vector<std::string>> Rows;
    ASSERT_TRUE(readTsvFile(Dir + File, Rows));
    std::reverse(Rows.begin(), Rows.end());
    ASSERT_TRUE(writeTsvFile(Dir + File, Rows));
  }
  facts::FactDB B;
  ASSERT_EQ(facts::readFactsDir(Dir, B), "");

  EXPECT_EQ(A.fingerprint(), B.fingerprint())
      << "fingerprint must be independent of row order";
  EXPECT_NE(A.layoutHash(), B.layoutHash())
      << "layout hash must notice the reordering";
  std::filesystem::remove_all(Dir);
}

TEST(Fingerprint, ChangedFactChangesFingerprint) {
  facts::FactDB DB = testDB();
  std::uint64_t FP = DB.fingerprint();

  facts::FactDB Mutated = testDB();
  ASSERT_FALSE(Mutated.Assigns.empty());
  std::swap(Mutated.Assigns.back().From, Mutated.Assigns.back().To);
  EXPECT_NE(Mutated.fingerprint(), FP);

  facts::FactDB Dropped = testDB();
  Dropped.Assigns.pop_back();
  EXPECT_NE(Dropped.fingerprint(), FP);
}

TEST(Fingerprint, StableAcrossIdenticalLoads) {
  facts::FactDB A = testDB();
  facts::FactDB B = testDB();
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  EXPECT_EQ(A.layoutHash(), B.layoutHash());
}

//===----------------------------------------------------------------------===//
// Domain + context-interner export/import (the replayed-id invariant).
//===----------------------------------------------------------------------===//

TEST(DomainExport, ExportImportRoundTripsIds) {
  for (ctx::Abstraction A : {ctx::Abstraction::ContextString,
                             ctx::Abstraction::TransformerString}) {
    ctx::Config Cfg = ctx::twoObjectH(A);
    auto Dom = ctx::makeDomain(Cfg, /*ClassOfHeap=*/{5, 6});
    // Intern a handful of transformations by exercising the domain ops.
    ctx::CtxtVec M;
    M.push_back(ctx::EntryElem);
    ctx::TransformId T0 = Dom->record(M);
    ctx::TransformId T1 = Dom->mergeVirtual(/*Heap=*/0, /*Invoke=*/7, T0);
    ctx::TransformId T2 = Dom->mergeVirtual(/*Heap=*/1, /*Invoke=*/8, T1);
    (void)T2;

    std::vector<std::uint32_t> Words;
    Dom->exportInterned(Words);

    auto Dom2 = ctx::makeDomain(Cfg, {5, 6});
    ASSERT_TRUE(Dom2->importInterned(Words));
    ASSERT_EQ(Dom2->size(), Dom->size());
    // Replaying the same operations lands on the same ids.
    EXPECT_EQ(Dom2->record(M), T0);
    EXPECT_EQ(Dom2->mergeVirtual(0, 7, T0), T1);

    // A corrupted stream is rejected, not trusted.
    std::vector<std::uint32_t> Bad = Words;
    if (!Bad.empty()) {
      Bad.pop_back();
      EXPECT_FALSE(ctx::makeDomain(Cfg, {5, 6})->importInterned(Bad));
    }
  }
}

TEST(DomainExport, CtxtInternerRoundTrip) {
  Interner<ctx::CtxtVec, ctx::CtxtVecHash> I;
  ctx::CtxtVec V0; // the pre-seeded entry context
  I.intern(V0);
  ctx::CtxtVec V1;
  V1.push_back(3);
  I.intern(V1);
  ctx::CtxtVec V2;
  V2.push_back(3);
  V2.push_back(7);
  I.intern(V2);

  std::vector<std::uint32_t> Words;
  analysis::encodeCtxtInterner(I, Words);

  Interner<ctx::CtxtVec, ctx::CtxtVecHash> Back;
  ASSERT_TRUE(analysis::decodeCtxtInterner(Words, Back));
  ASSERT_EQ(Back.size(), 3u);
  EXPECT_EQ(Back.intern(V2), 2u);

  // Pre-seeded readers (the front-ends intern the entry context before
  // restoring) still line up, because the entry leads the stream.
  Interner<ctx::CtxtVec, ctx::CtxtVecHash> Seeded;
  Seeded.intern(V0);
  ASSERT_TRUE(analysis::decodeCtxtInterner(Words, Seeded));
  EXPECT_EQ(Seeded.size(), 3u);

  // Truncated and oversized streams are rejected.
  std::vector<std::uint32_t> Bad = Words;
  Bad.pop_back();
  Interner<ctx::CtxtVec, ctx::CtxtVecHash> B2;
  EXPECT_FALSE(analysis::decodeCtxtInterner(Bad, B2));
  std::vector<std::uint32_t> Huge = {static_cast<std::uint32_t>(
      ctx::CtxtVec::capacity() + 1)};
  Interner<ctx::CtxtVec, ctx::CtxtVecHash> B3;
  EXPECT_FALSE(analysis::decodeCtxtInterner(Huge, B3));
}

//===----------------------------------------------------------------------===//
// Exit-code protocol: shared header, frozen values.
//===----------------------------------------------------------------------===//

TEST(ExitCodes, ProtocolValuesAreFrozen) {
  // Scripts (scripts/crashloop.sh) and CI key off the numeric values;
  // changing one is a breaking interface change, so pin them.
  EXPECT_EQ(ExitOk, 0);
  EXPECT_EQ(ExitError, 1);
  EXPECT_EQ(ExitUsage, 2);
  EXPECT_EQ(ExitDegraded, 3);
  EXPECT_EQ(ExitFindings, 4);
}

} // namespace
