//===- tests/oracle_test.cpp - CI oracle and PAG tests --------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "cfl/Oracle.h"
#include "cfl/Pag.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ctp;
using ctx::Abstraction;

namespace {

TEST(OracleTest, Figure1InsensitiveResults) {
  workload::Figure1Program F = workload::figure1();
  facts::FactDB DB = facts::extract(F.P);
  cfl::OracleResult R = cfl::solveInsensitive(DB);

  auto PointsTo = [&](std::uint32_t V) {
    std::vector<std::uint32_t> Out;
    for (const auto &P : R.Pts)
      if (P[0] == V)
        Out.push_back(P[1]);
    return Out;
  };
  EXPECT_EQ(PointsTo(F.X1), (std::vector<std::uint32_t>{F.H1, F.H2}));
  EXPECT_EQ(PointsTo(F.Z), (std::vector<std::uint32_t>{F.H1}));
}

TEST(OracleTest, MatchesInsensitiveSolverOnPaperPrograms) {
  for (int Which = 0; Which < 3; ++Which) {
    ir::Program P = Which == 0   ? workload::figure1().P
                    : Which == 1 ? workload::figure5().P
                                 : workload::figure7().P;
    facts::FactDB DB = facts::extract(P);
    cfl::OracleResult O = cfl::solveInsensitive(DB);
    analysis::Results R = analysis::solve(
        DB, ctx::insensitive(Abstraction::TransformerString));
    EXPECT_EQ(O.Pts, R.ciPts()) << "program " << Which;
    EXPECT_EQ(O.Calls, R.ciCall()) << "program " << Which;
    EXPECT_EQ(O.ReachableMethods, R.ciReach()) << "program " << Which;
  }
}

TEST(OracleTest, MatchesInsensitiveSolverOnPreset) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  cfl::OracleResult O = cfl::solveInsensitive(DB);
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::insensitive(A));
    EXPECT_EQ(O.Pts, R.ciPts());
    EXPECT_EQ(O.Calls, R.ciCall());
  }
}

TEST(PagTest, IntraproceduralEdges) {
  workload::Figure7Program F = workload::figure7();
  facts::FactDB DB = facts::extract(F.P);
  cfl::Pag G(DB);
  // 2 new edges + 1 store + 1 load; no interprocedural edges requested.
  std::size_t News = 0, Stores = 0, Loads = 0, Entries = 0;
  for (const auto &E : G.edges()) {
    switch (E.Kind) {
    case cfl::EdgeKind::New:
      ++News;
      break;
    case cfl::EdgeKind::Store:
      ++Stores;
      break;
    case cfl::EdgeKind::Load:
      ++Loads;
      break;
    case cfl::EdgeKind::Entry:
      ++Entries;
      break;
    default:
      break;
    }
  }
  EXPECT_EQ(News, 2u);
  EXPECT_EQ(Stores, 1u);
  EXPECT_EQ(Loads, 1u);
  EXPECT_EQ(Entries, 0u);
}

TEST(PagTest, InterproceduralEdgesFromCallGraph) {
  workload::Figure5Program F = workload::figure5();
  facts::FactDB DB = facts::extract(F.P);
  cfl::OracleResult O = cfl::solveInsensitive(DB);
  std::vector<cfl::CallEdge> Calls;
  for (const auto &C : O.Calls)
    Calls.push_back({C[0], C[1]});
  cfl::Pag G(DB, Calls);
  std::size_t Entries = 0, Exits = 0;
  for (const auto &E : G.edges()) {
    if (E.Kind == cfl::EdgeKind::Entry)
      ++Entries;
    if (E.Kind == cfl::EdgeKind::Exit)
      ++Exits;
  }
  // id1 passes one parameter; m1/m2 pass none. All three return.
  EXPECT_EQ(Entries, 1u);
  EXPECT_EQ(Exits, 3u);
}

TEST(PagTest, DotOutputMentionsLabels) {
  workload::Figure7Program F = workload::figure7();
  facts::FactDB DB = facts::extract(F.P);
  cfl::Pag G(DB);
  std::string Dot = G.toDot(DB);
  EXPECT_NE(Dot.find("digraph pag"), std::string::npos);
  EXPECT_NE(Dot.find("store[f]"), std::string::npos);
  EXPECT_NE(Dot.find("load[f]"), std::string::npos);
  EXPECT_NE(Dot.find("new"), std::string::npos);
}

} // namespace
