//===- tests/verify_test.cpp - Fixpoint certification tests ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Positive certification of converged results, and the negative paths:
// each seeded corruption — a dropped tuple, an extra tuple, a swapped
// context, a stale snapshot — must produce a failing check that names
// the counterexample.
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkpoint.h"
#include "analysis/Solver.h"
#include "analysis/Unify.h"
#include "facts/Extract.h"
#include "support/Posix.h"
#include "support/Verdict.h"
#include "verify/Verify.h"
#include "workload/Generator.h"

#include "gtest/gtest.h"

#include <string>

using namespace ctp;
using ctx::Abstraction;

namespace {

facts::FactDB testDB() {
  // Big enough to exercise every Figure-3 rule (virtual dispatch, field
  // flow, globals, exceptions) while solving in milliseconds.
  workload::WorkloadParams Params;
  Params.DataClasses = 3;
  Params.WrapperChains = 2;
  Params.Factories = 2;
  Params.Containers = 2;
  Params.PolyBases = 1;
  Params.Drivers = 2;
  Params.Scenarios = 4;
  Params.Seed = 7;
  return facts::extract(workload::generate(Params));
}

analysis::Results solveWithProv(const facts::FactDB &DB,
                                const ctx::Config &Cfg) {
  analysis::SolverOptions SO;
  SO.Provenance.Enabled = true;
  return analysis::solve(DB, Cfg, SO);
}

TEST(VerifyTest, CertifiesConvergedResult) {
  facts::FactDB DB = testDB();
  for (const char *Name : {"2-object+H", "1-call+H", "insensitive"}) {
    ctx::Config Cfg;
    ASSERT_TRUE(
        ctx::configByName(Name, Abstraction::TransformerString, Cfg));
    analysis::Results R = solveWithProv(DB, Cfg);
    std::string CE;
    EXPECT_TRUE(verify::checkClosure(DB, R, verify::ClosureOptions(), CE))
        << Name << ": " << CE;
    EXPECT_TRUE(verify::checkSupport(DB, R, CE)) << Name << ": " << CE;
  }
}

TEST(VerifyTest, CertifiesContextStrings) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg;
  ASSERT_TRUE(
      ctx::configByName("1-object", Abstraction::ContextString, Cfg));
  analysis::Results R = solveWithProv(DB, Cfg);
  std::string CE;
  EXPECT_TRUE(verify::checkClosure(DB, R, verify::ClosureOptions(), CE))
      << CE;
  EXPECT_TRUE(verify::checkSupport(DB, R, CE)) << CE;
}

TEST(VerifyTest, ClosureFailsOnDroppedTuple) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results R = analysis::solve(DB, Cfg);
  ASSERT_FALSE(R.Pts.empty());
  // Drop one derived conclusion; its premises all survive, so exactly
  // the rule that derived it can still fire.
  analysis::PtsFact Dropped = R.Pts[R.Pts.size() / 2];
  R.Pts.erase(R.Pts.begin() +
              static_cast<std::ptrdiff_t>(R.Pts.size() / 2));
  std::string CE;
  EXPECT_FALSE(verify::checkClosure(DB, R, verify::ClosureOptions(), CE));
  EXPECT_NE(CE.find("can still derive"), std::string::npos) << CE;
  EXPECT_NE(CE.find(DB.VarNames[Dropped.Var]), std::string::npos) << CE;
  EXPECT_NE(CE.find(DB.HeapNames[Dropped.Heap]), std::string::npos) << CE;
}

TEST(VerifyTest, ClosureFailsOnTruncatedRun) {
  facts::FactDB DB = testDB();
  analysis::SolverOptions SO;
  SO.Budget.MaxDerivations = 50;
  analysis::Results R = analysis::solve(
      DB, ctx::twoObjectH(Abstraction::TransformerString), SO);
  ASSERT_NE(R.Stat.Term, TerminationReason::Converged);
  std::string CE;
  EXPECT_FALSE(verify::checkClosure(DB, R, verify::ClosureOptions(), CE));
  EXPECT_NE(CE.find("did not converge"), std::string::npos) << CE;
}

TEST(VerifyTest, SupportFailsOnExtraTuple) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results R = solveWithProv(DB, Cfg);
  ASSERT_FALSE(R.Pts.empty());

  auto Contains = [&](const analysis::PtsFact &F) {
    for (const analysis::PtsFact &G : R.Pts)
      if (G.Var == F.Var && G.Heap == F.Heap && G.T == F.T)
        return true;
    return false;
  };
  // Forge a tuple from existing parts so it renders cleanly but has no
  // recorded derivation.
  analysis::PtsFact Bogus = R.Pts.front();
  bool Found = false;
  for (const analysis::PtsFact &Other : R.Pts) {
    analysis::PtsFact Candidate{Bogus.Var, Other.Heap, Other.T};
    if (!Contains(Candidate)) {
      Bogus = Candidate;
      Found = true;
      break;
    }
  }
  ASSERT_TRUE(Found) << "workload too small to forge an absent tuple";
  R.Pts.push_back(Bogus);

  std::string CE;
  EXPECT_FALSE(verify::checkSupport(DB, R, CE));
  EXPECT_NE(CE.find("no recorded derivation"), std::string::npos) << CE;
  EXPECT_NE(CE.find(DB.VarNames[Bogus.Var]), std::string::npos) << CE;
}

TEST(VerifyTest, SupportFailsOnSwappedContext) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results R = solveWithProv(DB, Cfg);

  auto Contains = [&](std::uint32_t Var, std::uint32_t Heap,
                      ctx::TransformId T) {
    for (const analysis::PtsFact &G : R.Pts)
      if (G.Var == Var && G.Heap == Heap && G.T == T)
        return true;
    return false;
  };
  // Rewrite one tuple's transformation to a different interned value:
  // the recorded fact vanishes from its relation and the mutant has no
  // derivation.
  std::size_t Victim = R.Pts.size();
  ctx::TransformId NewT = 0;
  for (std::size_t I = 0; I < R.Pts.size() && Victim == R.Pts.size(); ++I)
    for (const analysis::PtsFact &Other : R.Pts) {
      if (Other.T == R.Pts[I].T)
        continue;
      if (!Contains(R.Pts[I].Var, R.Pts[I].Heap, Other.T)) {
        Victim = I;
        NewT = Other.T;
        break;
      }
    }
  ASSERT_LT(Victim, R.Pts.size())
      << "workload too small to swap a context";
  R.Pts[Victim].T = NewT;

  std::string CE;
  EXPECT_FALSE(verify::checkSupport(DB, R, CE));
  EXPECT_NE(CE.find("absent from its relation"), std::string::npos) << CE;
}

//===----------------------------------------------------------------------===//
// Contextless flavours: positive certification plus the same seeded
// corruptions — a dropped tuple, an extra tuple, a bogus shortcut edge.
//===----------------------------------------------------------------------===//

TEST(VerifyTest, CertifiesCutShortcutResult) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg;
  ASSERT_TRUE(
      ctx::configByName("cutshortcut", Abstraction::TransformerString, Cfg));
  analysis::Results R = solveWithProv(DB, Cfg);
  std::string CE;
  EXPECT_TRUE(verify::checkClosure(DB, R, verify::ClosureOptions(), CE))
      << CE;
  EXPECT_TRUE(verify::checkSupport(DB, R, CE)) << CE;
}

TEST(VerifyTest, CutShortcutClosureFailsOnDroppedTuple) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg;
  ASSERT_TRUE(
      ctx::configByName("cutshortcut", Abstraction::TransformerString, Cfg));
  analysis::Results R = analysis::solve(DB, Cfg);
  ASSERT_FALSE(R.Pts.empty());
  R.Pts.erase(R.Pts.begin() +
              static_cast<std::ptrdiff_t>(R.Pts.size() / 2));
  std::string CE;
  EXPECT_FALSE(verify::checkClosure(DB, R, verify::ClosureOptions(), CE));
  EXPECT_NE(CE.find("can still derive"), std::string::npos) << CE;
}

TEST(VerifyTest, CutShortcutSupportFailsOnBogusShortcutEdge) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg;
  ASSERT_TRUE(
      ctx::configByName("cutshortcut", Abstraction::TransformerString, Cfg));
  analysis::Results R = solveWithProv(DB, Cfg);
  ASSERT_TRUE(R.Prov);

  auto Contains = [&](const analysis::PtsFact &F) {
    for (const analysis::PtsFact &G : R.Pts)
      if (G.Var == F.Var && G.Heap == F.Heap && G.T == F.T)
        return true;
    return false;
  };
  // A SHORTCUT derivation is only well-founded when an actual of the call
  // premise's invocation sits on a cut-plan shortcut. Forge a conclusion
  // whose pts premise variable is no actual of that invocation at all:
  // both premises are genuinely recorded nodes, but nothing grounds the
  // claimed shortcut edge.
  std::uint32_t CallNode = analysis::ProvenanceGraph::InvalidNode;
  analysis::CallFact CF{};
  for (const analysis::CallFact &C : R.Call)
    if ((CallNode = R.Prov->lookup(analysis::ProvRel::Call,
                                   analysis::keyOf(C))) !=
        analysis::ProvenanceGraph::InvalidNode) {
      CF = C;
      break;
    }
  ASSERT_NE(CallNode, analysis::ProvenanceGraph::InvalidNode);

  bool Forged = false;
  for (const analysis::PtsFact &P : R.Pts) {
    std::uint32_t PtsNode =
        R.Prov->lookup(analysis::ProvRel::Pts, analysis::keyOf(P));
    if (PtsNode == analysis::ProvenanceGraph::InvalidNode)
      continue;
    bool IsActual = false;
    for (const auto &A : DB.Actuals)
      IsActual |= A.Invoke == CF.Invoke && A.Var == P.Var;
    if (IsActual)
      continue;
    analysis::PtsFact Bogus{P.Var == 0 ? 1u : 0u, P.Heap, P.T};
    if (Contains(Bogus))
      continue;
    R.Prov->note(analysis::ProvRel::Pts, analysis::keyOf(Bogus),
                 analysis::ProvRule::Shortcut, PtsNode, CallNode,
                 CF.Invoke);
    R.Pts.push_back(Bogus);
    Forged = true;
    break;
  }
  ASSERT_TRUE(Forged) << "workload too small to forge a shortcut edge";

  std::string CE;
  EXPECT_FALSE(verify::checkSupport(DB, R, CE));
  EXPECT_NE(CE.find("grounds the edge"), std::string::npos) << CE;
}

TEST(VerifyTest, CertifiesUnifyViewResult) {
  // The unify flavour certifies its view-backed native run: requesting
  // provenance routes solve() through the native engine over
  // unifyView(DB), and the certificates check against that same view.
  facts::FactDB DB = testDB();
  ctx::Config Cfg;
  ASSERT_TRUE(
      ctx::configByName("unify", Abstraction::TransformerString, Cfg));
  analysis::Results R = solveWithProv(DB, Cfg);
  const facts::FactDB View = analysis::unifyView(DB);
  std::string CE;
  EXPECT_TRUE(verify::checkClosure(View, R, verify::ClosureOptions(), CE))
      << CE;
  EXPECT_TRUE(verify::checkSupport(View, R, CE)) << CE;
}

TEST(VerifyTest, UnifyClosureFailsOnDroppedTuple) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg;
  ASSERT_TRUE(
      ctx::configByName("unify", Abstraction::TransformerString, Cfg));
  analysis::Results R = solveWithProv(DB, Cfg);
  const facts::FactDB View = analysis::unifyView(DB);
  ASSERT_FALSE(R.Pts.empty());
  R.Pts.erase(R.Pts.begin() +
              static_cast<std::ptrdiff_t>(R.Pts.size() / 2));
  std::string CE;
  EXPECT_FALSE(verify::checkClosure(View, R, verify::ClosureOptions(), CE));
  EXPECT_NE(CE.find("can still derive"), std::string::npos) << CE;
}

TEST(VerifyTest, UnifySupportFailsOnExtraTuple) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg;
  ASSERT_TRUE(
      ctx::configByName("unify", Abstraction::TransformerString, Cfg));
  analysis::Results R = solveWithProv(DB, Cfg);
  const facts::FactDB View = analysis::unifyView(DB);
  ASSERT_FALSE(R.Pts.empty());

  auto Contains = [&](const analysis::PtsFact &F) {
    for (const analysis::PtsFact &G : R.Pts)
      if (G.Var == F.Var && G.Heap == F.Heap && G.T == F.T)
        return true;
    return false;
  };
  analysis::PtsFact Bogus = R.Pts.front();
  bool Found = false;
  for (const analysis::PtsFact &Other : R.Pts) {
    analysis::PtsFact Candidate{Bogus.Var, Other.Heap, Other.T};
    if (!Contains(Candidate)) {
      Bogus = Candidate;
      Found = true;
      break;
    }
  }
  ASSERT_TRUE(Found) << "workload too small to forge an absent tuple";
  R.Pts.push_back(Bogus);

  std::string CE;
  EXPECT_FALSE(verify::checkSupport(View, R, CE));
  EXPECT_NE(CE.find("no recorded derivation"), std::string::npos) << CE;
}

TEST(VerifyTest, SnapshotRoundTripPassesBothBackends) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg = ctx::oneCallH(Abstraction::TransformerString);
  std::string Dir = ::testing::TempDir() + "ctp_verify_snap_ok";
  ASSERT_EQ(posix::mkdirs(Dir), "");
  analysis::removeSnapshot(Dir);
  std::string CE;
  EXPECT_TRUE(
      verify::checkSnapshotRoundTrip(DB, Cfg, /*UseDatalog=*/false, Dir, CE))
      << CE;
  EXPECT_TRUE(
      verify::checkSnapshotRoundTrip(DB, Cfg, /*UseDatalog=*/true, Dir, CE))
      << CE;
  analysis::removeSnapshot(Dir);
}

TEST(VerifyTest, SnapshotCheckFailsOnStaleSnapshot) {
  facts::FactDB DB = testDB();
  ctx::Config Cfg = ctx::oneCallH(Abstraction::TransformerString);
  std::string Dir = ::testing::TempDir() + "ctp_verify_snap_stale";
  ASSERT_EQ(posix::mkdirs(Dir), "");
  analysis::removeSnapshot(Dir);

  // A previous "life" leaves a converged snapshot behind...
  analysis::SolverOptions SO;
  SO.Checkpoint.Dir = Dir;
  SO.Checkpoint.KeepOnConverge = true;
  analysis::Results Old = analysis::solve(DB, Cfg, SO);
  ASSERT_EQ(Old.Stat.CheckpointError, "");

  // ...then the fact base changes under it. The round-trip check must
  // reject the stale snapshot instead of resuming from it.
  facts::FactDB Mutated = DB;
  facts::AssignFact Extra;
  Extra.From = 0;
  Extra.To = Mutated.numVars() > 1 ? 1 : 0;
  Mutated.Assigns.push_back(Extra);

  std::string CE;
  EXPECT_FALSE(verify::checkSnapshotRoundTrip(Mutated, Cfg,
                                              /*UseDatalog=*/false, Dir, CE));
  EXPECT_FALSE(CE.empty());
  analysis::removeSnapshot(Dir);
}

TEST(VerifyTest, VerifyFactDBEndToEnd) {
  facts::FactDB DB = testDB();
  verify::VerifyOptions Opts;
  Opts.Configs = {"1-call+H", "1-call", "insensitive"};
  Opts.Samples = 4;
  verdict::Report Report;
  EXPECT_TRUE(verify::verifyFactDB(DB, "gen", Opts, Report));
  EXPECT_TRUE(Report.allPassed());
  // Per config: closure+support+differential+closure(datalog) rows; plus
  // the monotonic pairs (1-call+H <= 1-call and the two insensitive
  // comparisons), oracle rows, and a skipped snapshot row.
  EXPECT_GT(Report.checks().size(), 12u);

  bool SawMonotonic = false, SawOracle = false, SawDifferential = false;
  for (const verdict::Check &C : Report.checks()) {
    SawMonotonic |= C.Name == "monotonic";
    SawOracle |= C.Name == "oracle";
    SawDifferential |= C.Name == "differential";
  }
  EXPECT_TRUE(SawMonotonic);
  EXPECT_TRUE(SawOracle);
  EXPECT_TRUE(SawDifferential);

  // The rendered report is deterministic and round-trips the summary.
  std::string Tsv = Report.renderTsv();
  EXPECT_NE(Tsv.find("summary\t-\tpass"), std::string::npos);
  EXPECT_EQ(Tsv, Report.renderTsv());
}

TEST(VerifyTest, VerifyFactDBReportsCorruption) {
  // End-to-end negative: an unknown configuration name yields a failing
  // config row, not a crash or a silent skip.
  facts::FactDB DB = testDB();
  verify::VerifyOptions Opts;
  Opts.Configs = {"3-object"};
  verdict::Report Report;
  EXPECT_FALSE(verify::verifyFactDB(DB, "gen", Opts, Report));
  ASSERT_EQ(Report.checks().size(), 1u);
  EXPECT_EQ(Report.checks()[0].Name, "config");
  EXPECT_EQ(Report.checks()[0].St, verdict::Status::Fail);
}

} // namespace
