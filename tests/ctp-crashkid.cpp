//===- tests/ctp-crashkid.cpp - Misbehaving child for supervisor tests ----===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// A stand-in for ctp-analyze that dies in exactly the way a test asks it
// to, so supervisor_test can exercise every branch of the triage taxonomy
// without waiting on a real solver. Behaviour is driven by environment
// variables (the supervisor owns argv):
//
//   CTP_CRASHKID_MODE     exit | signal | hang | spin | alloc | beat |
//                         failn
//   CTP_CRASHKID_ARG      integer argument (exit code, signal number,
//                         milliseconds, or failure count, per mode)
//   CTP_CRASHKID_ARGVLOG  append one space-joined argv line per
//                         invocation; its line count is the invocation
//                         counter the "failn" mode consults
//
// Modes:
//   exit    exit with code ARG
//   signal  raise(ARG)
//   hang    install the heartbeat, then never beat (watchdog-stall bait)
//   spin    busy-loop while beating (RLIMIT_CPU bait: dies by SIGXCPU)
//   alloc   allocate without bound while beating (RLIMIT_AS bait: dies
//           by bad_alloc -> terminate -> SIGABRT)
//   beat    beat for ARG ms, then exit 0
//   failn   exit 1 while fewer than ARG invocations have been logged,
//           then exit 0 (retry-ladder bait; requires CTP_CRASHKID_ARGVLOG)
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

using Clock = std::chrono::steady_clock;

namespace {

long countLines(const std::string &Path) {
  std::ifstream In(Path);
  long N = 0;
  std::string Line;
  while (std::getline(In, Line))
    ++N;
  return N;
}

void beatFor(long Ms) {
  auto Until = Clock::now() + std::chrono::milliseconds(Ms);
  while (Clock::now() < Until) {
    for (int I = 0; I < 256; ++I)
      ctp::heartbeat::onPoll();
    ::usleep(1000);
  }
}

} // namespace

int main(int argc, char **argv) {
  const char *ModeEnv = std::getenv("CTP_CRASHKID_MODE");
  std::string Mode = ModeEnv ? ModeEnv : "";
  const char *ArgEnv = std::getenv("CTP_CRASHKID_ARG");
  long Arg = ArgEnv ? std::atol(ArgEnv) : 0;
  const char *ArgvLog = std::getenv("CTP_CRASHKID_ARGVLOG");

  long Invocation = 0;
  if (ArgvLog && *ArgvLog) {
    Invocation = countLines(ArgvLog);
    std::ofstream Log(ArgvLog, std::ios::app);
    for (int I = 0; I < argc; ++I)
      Log << (I ? " " : "") << argv[I];
    Log << "\n";
  }

  ctp::heartbeat::installFromEnv();

  if (Mode == "exit")
    return static_cast<int>(Arg);
  if (Mode == "signal") {
    ::raise(static_cast<int>(Arg));
    return 1; // Non-fatal signal: report the oddity.
  }
  if (Mode == "hang") {
    // Alive but silent: precisely what the watchdog exists to catch.
    while (true)
      ::usleep(50000);
  }
  if (Mode == "spin") {
    volatile std::uint64_t Sink = 0;
    while (true) {
      for (std::uint64_t I = 0; I < 100000; ++I)
        Sink += I * I;
      ctp::heartbeat::onPoll();
    }
  }
  if (Mode == "alloc") {
    std::fprintf(stderr, "crashkid: allocating until the rlimit bites\n");
    std::vector<char *> Hoard;
    while (true) {
      // 16 MiB per step, touched so the pages are real.
      char *P = new char[16u << 20];
      std::memset(P, 0xab, 16u << 20);
      Hoard.push_back(P);
      ctp::heartbeat::onPoll();
    }
  }
  if (Mode == "beat") {
    beatFor(Arg > 0 ? Arg : 50);
    return 0;
  }
  if (Mode == "failn") {
    if (!ArgvLog || !*ArgvLog) {
      std::fprintf(stderr, "crashkid: failn requires CTP_CRASHKID_ARGVLOG\n");
      return 2;
    }
    if (Invocation < Arg) {
      std::fprintf(stderr, "crashkid: planned failure %ld/%ld\n",
                   Invocation + 1, Arg);
      return 1;
    }
    beatFor(10);
    return 0;
  }
  std::fprintf(stderr, "crashkid: unknown CTP_CRASHKID_MODE '%s'\n",
               Mode.c_str());
  return 2;
}
