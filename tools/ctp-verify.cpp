//===- tools/ctp-verify.cpp - Fixpoint certification driver ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Certifies solved analysis results instead of trusting the solver: for
// each requested preset (or an on-disk facts directory) and each rung of
// the configuration ladder, solves on the requested back-end(s) and runs
// the verification matrix — fixpoint closure, derivation support,
// native-vs-datalog differential, ladder monotonicity, CFL-oracle
// containment with demand-driven spot checks, and snapshot
// save/restore/re-solve identity. Emits one verdict row per check cell.
//
// Usage:
//   ctp-verify [options]
//     --preset NAME|all    built-in workload(s) to certify (default all)
//     --facts DIR          certify a Doop-style facts directory instead
//     --config NAME[,...]  ladder rung(s); repeatable (default: all 7)
//     --abstraction A      cs (context strings) | ts (transformers; default)
//     --backend B          native | datalog | both (default both)
//     --checks C[,...]     closure, support, differential, monotonic,
//                          oracle, snapshot, all (default all)
//     --samples N          demand-oracle spot-check query count (default 8)
//     --seed N             sampling seed (default 1)
//     --snapshot-dir DIR   scratch dir for the snapshot round-trip check
//                          (omitted => snapshot rows are skipped)
//     --format F           human | tsv (default human)
//     --out FILE           write the report there instead of stdout
//
// Exit codes (support/ExitCodes.h): 0 every check passed, 1 runtime
// error, 2 usage error, 5 at least one check failed (the report names
// the first counterexample tuple per failing cell).
//
//===----------------------------------------------------------------------===//

#include "ctx/Config.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/ExitCodes.h"
#include "support/Posix.h"
#include "support/Suggest.h"
#include "support/Verdict.h"
#include "verify/Verify.h"
#include "workload/Presets.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace ctp;

namespace {

int usage(const char *Prog) {
  std::string Presets;
  for (const std::string &N : workload::presetNames()) {
    if (!Presets.empty())
      Presets += ", ";
    Presets += N;
  }
  std::fprintf(
      stderr,
      "usage: %s [--preset NAME|all | --facts DIR] [--config NAME[,...]]\n"
      "          [--abstraction cs|ts] [--backend native|datalog|both]\n"
      "          [--checks LIST] [--samples N] [--seed N]\n"
      "          [--snapshot-dir DIR] [--format human|tsv] [--out FILE]\n"
      "  presets: %s\n"
      "  configs: 1-call, 1-call+H, 1-object, 2-object+H, 2-type+H,\n"
      "           2-hybrid+H, cutshortcut, insensitive, unify\n"
      "  checks:  closure, support, differential, monotonic, oracle,\n"
      "           snapshot, all\n"
      "  exit codes: 0 all checks passed, 1 error, 2 usage, 5 verification "
      "failed\n",
      Prog, Presets.c_str());
  return ExitUsage;
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  std::size_t Pos = 0;
  while (Pos <= S.size()) {
    std::size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string FactsDir, Preset, OutFile, Format = "human";
  std::vector<std::string> Configs, Checks;
  verify::VerifyOptions VOpts;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg.c_str());
        return nullptr;
      }
      return argv[++I];
    };
    if (Arg == "--preset") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Preset = V;
    } else if (Arg == "--facts") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      FactsDir = V;
    } else if (Arg == "--config") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      for (const std::string &C : splitList(V))
        Configs.push_back(C);
    } else if (Arg == "--abstraction") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      if (std::strcmp(V, "cs") == 0)
        VOpts.Abs = ctx::Abstraction::ContextString;
      else if (std::strcmp(V, "ts") == 0)
        VOpts.Abs = ctx::Abstraction::TransformerString;
      else {
        std::fprintf(stderr, "error: unknown abstraction '%s'%s\n", V,
                     support::didYouMean(V, {"cs", "ts"}).c_str());
        return usage(argv[0]);
      }
    } else if (Arg == "--backend") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      if (std::strcmp(V, "native") == 0) {
        VOpts.Native = true;
        VOpts.Datalog = false;
      } else if (std::strcmp(V, "datalog") == 0) {
        VOpts.Native = false;
        VOpts.Datalog = true;
      } else if (std::strcmp(V, "both") == 0) {
        VOpts.Native = VOpts.Datalog = true;
      } else {
        std::fprintf(
            stderr, "error: unknown backend '%s'%s\n", V,
            support::didYouMean(V, {"native", "datalog", "both"}).c_str());
        return usage(argv[0]);
      }
    } else if (Arg == "--checks") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      for (const std::string &C : splitList(V))
        Checks.push_back(C);
    } else if (Arg == "--samples") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      VOpts.Samples = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--seed") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      VOpts.Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--snapshot-dir") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      VOpts.SnapshotDir = V;
    } else if (Arg == "--format") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Format = V;
      if (Format != "human" && Format != "tsv") {
        std::fprintf(stderr, "error: unknown format '%s'%s\n", V,
                     support::didYouMean(V, {"human", "tsv"}).c_str());
        return usage(argv[0]);
      }
    } else if (Arg == "--out") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      OutFile = V;
    } else {
      static const std::vector<std::string> Flags = {
          "--preset",  "--facts",   "--config",       "--abstraction",
          "--backend", "--checks",  "--samples",      "--seed",
          "--snapshot-dir", "--format", "--out"};
      std::fprintf(stderr, "error: unknown option '%s'%s\n", Arg.c_str(),
                   support::didYouMean(Arg, Flags).c_str());
      return usage(argv[0]);
    }
  }
  if (!FactsDir.empty() && !Preset.empty()) {
    std::fprintf(stderr,
                 "error: --facts and --preset are mutually exclusive\n");
    return usage(argv[0]);
  }
  if (FactsDir.empty() && Preset.empty())
    Preset = "all";

  // Closed vocabularies validate up front with did-you-mean hints.
  for (const std::string &C : Configs) {
    ctx::Config Probe;
    if (!ctx::configByName(C, VOpts.Abs, Probe)) {
      std::fprintf(stderr, "error: unknown config '%s'%s\n", C.c_str(),
                   support::didYouMean(C, ctx::configNames()).c_str());
      return usage(argv[0]);
    }
  }
  VOpts.Configs = Configs;

  if (!Checks.empty()) {
    static const std::vector<std::string> Known = {
        "closure", "support",  "differential", "monotonic",
        "oracle",  "snapshot", "all"};
    bool All = false;
    VOpts.Closure = VOpts.Support = VOpts.Differential = VOpts.Monotonic =
        VOpts.Oracle = VOpts.Snapshot = false;
    for (const std::string &C : Checks) {
      if (C == "closure")
        VOpts.Closure = true;
      else if (C == "support")
        VOpts.Support = true;
      else if (C == "differential")
        VOpts.Differential = true;
      else if (C == "monotonic")
        VOpts.Monotonic = true;
      else if (C == "oracle")
        VOpts.Oracle = true;
      else if (C == "snapshot")
        VOpts.Snapshot = true;
      else if (C == "all")
        All = true;
      else {
        std::fprintf(stderr, "error: unknown check '%s'%s\n", C.c_str(),
                     support::didYouMean(C, Known).c_str());
        return usage(argv[0]);
      }
    }
    if (All)
      VOpts.Closure = VOpts.Support = VOpts.Differential = VOpts.Monotonic =
          VOpts.Oracle = VOpts.Snapshot = true;
  }

  if (!VOpts.SnapshotDir.empty()) {
    std::string Err = posix::mkdirs(VOpts.SnapshotDir);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
  }

  // Resolve the worklist of (cell prefix, fact database) pairs.
  std::vector<std::pair<std::string, facts::FactDB>> Work;
  if (!FactsDir.empty()) {
    facts::FactDB DB;
    std::string Err = facts::readFactsDir(FactsDir, DB);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
    Work.emplace_back("facts", std::move(DB));
  } else if (Preset == "all") {
    for (const std::string &N : workload::presetNames())
      Work.emplace_back(N, facts::extract(workload::generatePreset(N)));
  } else {
    bool Known = false;
    for (const std::string &N : workload::presetNames())
      Known |= N == Preset;
    if (!Known) {
      std::fprintf(
          stderr, "error: unknown preset '%s'%s\n", Preset.c_str(),
          support::didYouMean(Preset, workload::presetNames()).c_str());
      return usage(argv[0]);
    }
    Work.emplace_back(Preset, facts::extract(workload::generatePreset(Preset)));
  }

  verdict::Report Report;
  bool AllOk = true;
  for (auto &[Prefix, DB] : Work)
    AllOk &= verify::verifyFactDB(DB, Prefix, VOpts, Report);

  std::string Rendered =
      Format == "tsv" ? Report.renderTsv() : Report.renderHuman();
  if (OutFile.empty()) {
    std::fputs(Rendered.c_str(), stdout);
  } else {
    std::ofstream Out(OutFile, std::ios::binary | std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutFile.c_str());
      return ExitError;
    }
    Out << Rendered;
    if (!Out.flush()) {
      std::fprintf(stderr, "error: short write to %s\n", OutFile.c_str());
      return ExitError;
    }
    std::fprintf(stderr, "verdict report written to %s\n", OutFile.c_str());
  }
  return AllOk ? ExitOk : ExitVerifyFailed;
}
