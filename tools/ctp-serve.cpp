//===- tools/ctp-serve.cpp - Resident analysis service driver -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// A fault-tolerant resident analysis daemon: solve once (warm-starting
// from a checkpoint when one validates), then answer points-to / alias /
// taint queries over a Unix-socket protocol with per-request deadlines,
// admission control, and supervised crash recovery. See serve/Service.h
// and the "Analysis service" section of DESIGN.md.
//
// Modes:
//   ctp-serve --socket PATH (--preset NAME | --facts DIR) [solve opts]
//       run the daemon in the foreground (exit 0 on `shutdown`/SIGTERM)
//   ctp-serve --supervise --workdir DIR --socket PATH (--preset ...)
//       babysit the daemon: respawn the above command line as a child,
//       watch its heartbeat, crash-restart with backoff
//   ctp-serve --client PATH [--connect-timeout-ms N] [--retries N]
//             [--retry-base-ms N]
//       read queries from stdin (one per line, "verb arg..."), pipeline
//       them, print "id <TAB> status <TAB> mode <TAB> epoch <TAB> body"
//       lines sorted by id. OVERLOADED replies (load shed by the
//       daemon's admission queue) are re-sent with jittered exponential
//       backoff, up to --retries attempts (default 3; 0 disables, which
//       the overload drill in crashloop.sh uses to observe the sheds).
//
// Daemon options:
//   --config NAME          analysis configuration (default 2-object+H)
//   --collapse             subsumption collapsing
//   --checkpoint-dir DIR   warm-start state (strongly recommended)
//   --checkpoint-every N   mid-solve checkpoint cadence (default 20000)
//   --startup-deadline-ms N / --max-derivations N / --max-tuples N
//                          startup-solve budget (then ladder descent)
//   --mem-budget-mb N      RSS budget enforced by the in-process memory
//                          governor (support/Memory.h); under pressure
//                          the daemon drops caches, descends the ladder
//                          or falls to demand-driven answers, and sheds
//                          admissions — never dies of OOM. CTP_MEM_FAULT
//                          ("soft@N[xR]" / "hard@N[xR]" / "badalloc@N")
//                          arms a simulated pressure drill.
//   --workers N            worker threads (default 2)
//   --queue-cap N          admission queue bound (default 8)
// Supervisor options:
//   --stall-timeout-ms N   heartbeat watchdog (default 10000)
//   --backoff-ms N / --backoff-cap-ms N / --stable-reset-ms N
//   --max-restarts N       negative = never give up (default)
//
// Exit codes (support/ExitCodes.h): 0 clean stop, 1 error, 2 usage.
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"
#include "serve/Wire.h"
#include "support/Budget.h"
#include "support/ExitCodes.h"
#include "support/FaultInjection.h"
#include "support/Posix.h"
#include "support/Supervisor.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ctp;

namespace {

volatile std::sig_atomic_t GStop = 0;

void onStopSignal(int) { GStop = 1; }

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH (--preset NAME | --facts DIR) [options]\n"
      "       %s --supervise --workdir DIR --socket PATH (--preset ...)\n"
      "       %s --client PATH [--connect-timeout-ms N] [--retries N] "
      "[--retry-base-ms N]\n"
      "see the file header or DESIGN.md (\"Analysis service\") for the "
      "option list\n",
      Prog, Prog, Prog);
  return ExitUsage;
}

bool parseCount(const char *S, std::uint64_t &Out) {
  if (!S || *S < '0' || *S > '9')
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

//===----------------------------------------------------------------------===//
// Client mode.
//===----------------------------------------------------------------------===//

int connectWithRetry(const std::string &Path, std::uint64_t TimeoutMs) {
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  Stopwatch Clock;
  while (true) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) == 0)
      return Fd;
    posix::closeQuiet(Fd);
    if (Clock.seconds() * 1e3 >= static_cast<double>(TimeoutMs))
      return -1;
    ::usleep(20000); // The daemon may still be solving its warm start.
  }
}

/// Turns stdin lines into id-prefixed tab-separated requests, pipelines
/// them all, then prints every response sorted by (numeric) id — so
/// output order is deterministic regardless of worker scheduling.
int runClient(const std::string &SocketPath, std::uint64_t TimeoutMs,
              std::uint64_t Retries, std::uint64_t RetryBaseMs) {
  int Fd = connectWithRetry(SocketPath, TimeoutMs);
  if (Fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s\n",
                 SocketPath.c_str());
    return ExitError;
  }
  std::vector<std::string> Lines;
  {
    std::string Line;
    int C;
    while ((C = std::getchar()) != EOF) {
      if (C == '\n') {
        if (!Line.empty())
          Lines.push_back(Line);
        Line.clear();
      } else {
        Line.push_back(static_cast<char>(C));
      }
    }
    if (!Line.empty())
      Lines.push_back(Line);
  }
  std::vector<std::string> Payloads;
  for (std::size_t I = 0; I < Lines.size(); ++I) {
    // "verb arg..." -> "<seq>\t<verb>\t<arg>...": ids are the line
    // numbers, so responses sort back into input order.
    std::string Payload = std::to_string(I);
    std::string Field;
    for (char Ch : Lines[I]) {
      if (Ch == ' ') {
        if (!Field.empty()) {
          Payload += '\t';
          Payload += Field;
          Field.clear();
        }
      } else {
        Field.push_back(Ch);
      }
    }
    if (!Field.empty()) {
      Payload += '\t';
      Payload += Field;
    }
    Payloads.push_back(std::move(Payload));
  }

  // One send/receive round over the indices in Batch, replacing each
  // index's slot in Responses. Returns false on a stream error.
  std::vector<serve::Response> Responses(Payloads.size());
  std::vector<serve::Response> Extras;
  auto Round = [&](const std::vector<std::size_t> &Batch) -> bool {
    for (std::size_t I : Batch)
      if (!serve::writeFrame(Fd, Payloads[I])) {
        std::fprintf(stderr, "error: send failed on query %zu\n", I);
        return false;
      }
    for (std::size_t N = 0; N < Batch.size(); ++N) {
      std::string Payload;
      serve::FrameResult FR = serve::readFrame(Fd, Payload);
      if (FR != serve::FrameResult::Ok) {
        std::fprintf(stderr, "error: stream ended early (%s) after %zu of "
                             "%zu responses\n",
                     serve::frameResultName(FR), N, Batch.size());
        return false;
      }
      serve::Response R;
      if (!serve::parseResponse(Payload, R)) {
        std::fprintf(stderr, "error: malformed response frame\n");
        return false;
      }
      // Responses arrive in any order; file each under its echoed id.
      // A non-numeric id is a daemon-side parse-error reply ("-"):
      // printable, but not attributable to a slot.
      char *End = nullptr;
      unsigned long long Id = std::strtoull(R.Id.c_str(), &End, 10);
      if (End == R.Id.c_str() || *End != '\0' || Id >= Responses.size())
        Extras.push_back(std::move(R));
      else
        Responses[static_cast<std::size_t>(Id)] = std::move(R);
    }
    return true;
  };

  std::vector<std::size_t> Batch(Payloads.size());
  for (std::size_t I = 0; I < Batch.size(); ++I)
    Batch[I] = I;
  if (!Round(Batch)) {
    posix::closeQuiet(Fd);
    return ExitError;
  }

  // Shed requests are safe to re-send: the daemon never started them.
  // Bounded, jittered exponential backoff so a burst of retrying clients
  // does not re-form the exact thundering herd that got shed.
  std::uint64_t JitterState =
      static_cast<std::uint64_t>(::getpid()) * 2654435761u + 1;
  for (std::uint64_t Attempt = 1; Attempt <= Retries; ++Attempt) {
    Batch.clear();
    for (std::size_t I = 0; I < Responses.size(); ++I)
      if (Responses[I].Status == serve::StatusOverloaded)
        Batch.push_back(I);
    if (Batch.empty())
      break;
    JitterState = JitterState * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t BackoffMs = RetryBaseMs << (Attempt - 1);
    BackoffMs = std::min<std::uint64_t>(BackoffMs, 2000) +
                (RetryBaseMs ? (JitterState >> 33) % RetryBaseMs : 0);
    std::fprintf(stderr,
                 "ctp-serve[client]: %zu overloaded, retry %llu/%llu in "
                 "%llums\n",
                 Batch.size(), (unsigned long long)Attempt,
                 (unsigned long long)Retries,
                 (unsigned long long)BackoffMs);
    ::usleep(static_cast<useconds_t>(BackoffMs * 1000));
    if (!Round(Batch)) {
      posix::closeQuiet(Fd);
      return ExitError;
    }
  }
  posix::closeQuiet(Fd);
  // Responses is already in id (= input line) order; unattributable
  // replies print after it, stably.
  bool AnyError = false;
  for (const serve::Response &R : Responses) {
    if (R.Status.empty())
      continue; // Slot answered only by an unattributable error reply.
    std::printf("%s\n", serve::renderResponse(R).c_str());
    AnyError |= R.Status == serve::StatusError;
  }
  for (const serve::Response &R : Extras) {
    std::printf("%s\n", serve::renderResponse(R).c_str());
    AnyError |= R.Status == serve::StatusError;
  }
  return AnyError ? ExitError : ExitOk;
}

void logLine(const std::string &Line, void *) {
  std::fprintf(stderr, "ctp-serve[supervise]: %s\n", Line.c_str());
  std::fflush(stderr);
}

} // namespace

int main(int argc, char **argv) {
  bool Supervise = false;
  std::string ClientSocket, SocketPath, WorkDir;
  std::uint64_t ConnectTimeoutMs = 30000;
  std::uint64_t Retries = 3, RetryBaseMs = 25;
  serve::ServiceOptions SOpts;
  service::ServeSupervisorOptions Sup;
  std::uint64_t Workers = 2, QueueCap = 8;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg.c_str());
        return nullptr;
      }
      return argv[++I];
    };
    auto NextCount = [&](std::uint64_t &Out) {
      const char *V = Next();
      if (!V)
        return false;
      if (!parseCount(V, Out)) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got "
                     "'%s'\n",
                     Arg.c_str(), V);
        return false;
      }
      return true;
    };
    if (Arg == "--supervise") {
      Supervise = true;
    } else if (Arg == "--client") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      ClientSocket = V;
    } else if (Arg == "--connect-timeout-ms") {
      if (!NextCount(ConnectTimeoutMs))
        return usage(argv[0]);
    } else if (Arg == "--retries") {
      if (!NextCount(Retries))
        return usage(argv[0]);
    } else if (Arg == "--retry-base-ms") {
      if (!NextCount(RetryBaseMs))
        return usage(argv[0]);
    } else if (Arg == "--socket") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      SocketPath = V;
    } else if (Arg == "--workdir") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      WorkDir = V;
    } else if (Arg == "--preset") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      SOpts.Preset = V;
    } else if (Arg == "--facts") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      SOpts.FactsDir = V;
    } else if (Arg == "--config") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      SOpts.ConfigName = V;
    } else if (Arg == "--collapse") {
      SOpts.Collapse = true;
    } else if (Arg == "--checkpoint-dir") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      SOpts.CheckpointDir = V;
    } else if (Arg == "--checkpoint-every") {
      if (!NextCount(SOpts.CheckpointEvery))
        return usage(argv[0]);
    } else if (Arg == "--startup-deadline-ms") {
      if (!NextCount(SOpts.StartupBudget.DeadlineMs))
        return usage(argv[0]);
    } else if (Arg == "--max-derivations") {
      if (!NextCount(SOpts.StartupBudget.MaxDerivations))
        return usage(argv[0]);
    } else if (Arg == "--max-tuples") {
      if (!NextCount(SOpts.StartupBudget.MaxTuples))
        return usage(argv[0]);
    } else if (Arg == "--mem-budget-mb") {
      if (!NextCount(SOpts.StartupBudget.MemBudgetMb))
        return usage(argv[0]);
    } else if (Arg == "--workers") {
      if (!NextCount(Workers))
        return usage(argv[0]);
    } else if (Arg == "--queue-cap") {
      if (!NextCount(QueueCap))
        return usage(argv[0]);
    } else if (Arg == "--stall-timeout-ms") {
      if (!NextCount(Sup.StallTimeoutMs))
        return usage(argv[0]);
    } else if (Arg == "--backoff-ms") {
      if (!NextCount(Sup.BackoffMs))
        return usage(argv[0]);
    } else if (Arg == "--backoff-cap-ms") {
      if (!NextCount(Sup.BackoffCapMs))
        return usage(argv[0]);
    } else if (Arg == "--stable-reset-ms") {
      if (!NextCount(Sup.StableResetMs))
        return usage(argv[0]);
    } else if (Arg == "--max-restarts") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Sup.MaxRestarts = std::atoi(V);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }

  if (!ClientSocket.empty())
    return runClient(ClientSocket, ConnectTimeoutMs, Retries, RetryBaseMs);

  if (SocketPath.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    return usage(argv[0]);
  }
  if (SOpts.FactsDir.empty() == SOpts.Preset.empty()) {
    std::fprintf(stderr,
                 "error: exactly one of --facts / --preset is required\n");
    return usage(argv[0]);
  }

  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
  // A peer that disconnects mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  if (Supervise) {
    if (WorkDir.empty()) {
      std::fprintf(stderr, "error: --supervise requires --workdir\n");
      return usage(argv[0]);
    }
    // The child runs this same binary minus the supervision flags; its
    // checkpoint directory is what turns a restart into a warm start.
    Sup.WorkDir = WorkDir;
    Sup.StopFlag = &GStop;
    Sup.Argv = {argv[0], "--socket", SocketPath};
    if (!SOpts.Preset.empty()) {
      Sup.Argv.push_back("--preset");
      Sup.Argv.push_back(SOpts.Preset);
    } else {
      Sup.Argv.push_back("--facts");
      Sup.Argv.push_back(SOpts.FactsDir);
    }
    Sup.Argv.push_back("--config");
    Sup.Argv.push_back(SOpts.ConfigName);
    if (SOpts.Collapse)
      Sup.Argv.push_back("--collapse");
    std::string CkptDir = SOpts.CheckpointDir.empty() ? WorkDir + "/ckpt"
                                                      : SOpts.CheckpointDir;
    Sup.Argv.push_back("--checkpoint-dir");
    Sup.Argv.push_back(CkptDir);
    auto AddCount = [&Sup](const char *Flag, std::uint64_t V) {
      if (V != 0) {
        Sup.Argv.push_back(Flag);
        Sup.Argv.push_back(std::to_string(V));
      }
    };
    AddCount("--checkpoint-every", SOpts.CheckpointEvery);
    AddCount("--startup-deadline-ms", SOpts.StartupBudget.DeadlineMs);
    AddCount("--max-derivations", SOpts.StartupBudget.MaxDerivations);
    AddCount("--max-tuples", SOpts.StartupBudget.MaxTuples);
    AddCount("--mem-budget-mb", SOpts.StartupBudget.MemBudgetMb);
    AddCount("--workers", Workers);
    AddCount("--queue-cap", QueueCap);
    return service::superviseService(Sup, logLine, nullptr);
  }

  // Daemon mode.
  heartbeat::installFromEnv();
  // Simulated memory-pressure drill (serve_test's burst, check.sh --oom):
  // the accept loop's governor polls consume the armed fault windows.
  if (const char *Fault = std::getenv("CTP_MEM_FAULT"))
    if (*Fault && !fault::armMemFaultByName(Fault))
      std::fprintf(stderr, "warning: unknown CTP_MEM_FAULT '%s' ignored\n",
                   Fault);
  SOpts.Workers = static_cast<std::size_t>(Workers);
  SOpts.QueueCap = static_cast<std::size_t>(QueueCap);
  SOpts.StopFlag = &GStop;
  serve::Service Svc(std::move(SOpts));
  std::string Err = Svc.init();
  if (!Err.empty()) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return ExitError;
  }
  return Svc.serve(SocketPath);
}
