//===- tools/ctp-genfacts.cpp - Synthetic facts generator -----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Generates one of the DaCapo-shaped synthetic workloads and writes its
// Doop-style .facts directory, plus (optionally) the pseudo-Java source
// of the generated program.
//
// Usage: ctp-genfacts PRESET OUTPUT_DIR [--seed N] [--print-program]
//
//===----------------------------------------------------------------------===//

#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/Suggest.h"
#include "workload/Presets.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

using namespace ctp;

int main(int argc, char **argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s PRESET OUTPUT_DIR [--seed N] "
                         "[--print-program]\n",
                 argv[0]);
    return 2;
  }
  std::string Preset = argv[1];
  std::string Dir = argv[2];
  std::uint64_t Seed = 0;
  bool HaveSeed = false, PrintProgram = false;
  for (int I = 3; I < argc; ++I) {
    if (std::strcmp(argv[I], "--seed") == 0 && I + 1 < argc) {
      Seed = std::strtoull(argv[++I], nullptr, 0);
      HaveSeed = true;
    } else if (std::strcmp(argv[I], "--print-program") == 0) {
      PrintProgram = true;
    } else {
      const std::vector<std::string> Flags = {"--seed", "--print-program"};
      std::fprintf(stderr, "error: unknown argument '%s'%s\n", argv[I],
                   support::didYouMean(argv[I], Flags).c_str());
      return 2;
    }
  }

  bool Known = false;
  for (const std::string &N : workload::presetNames())
    Known |= N == Preset;
  if (!Known) {
    std::fprintf(stderr, "error: unknown preset '%s'%s (try:", Preset.c_str(),
                 support::didYouMean(Preset, workload::presetNames()).c_str());
    for (const std::string &N : workload::presetNames())
      std::fprintf(stderr, " %s", N.c_str());
    std::fprintf(stderr, ")\n");
    return 1;
  }

  workload::WorkloadParams Params = workload::presetParams(Preset);
  if (HaveSeed)
    Params.Seed = Seed;
  ir::Program P = workload::generate(Params);
  if (PrintProgram)
    std::fputs(ir::printProgram(P).c_str(), stdout);

  facts::FactDB DB = facts::extract(P);
  std::filesystem::create_directories(Dir);
  std::string Err = facts::writeFactsDir(DB, Dir);
  if (!Err.empty()) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("wrote %zu input facts (%zu methods, %zu vars, %zu heap "
              "sites) to %s\n",
              DB.numInputFacts(), DB.numMethods(), DB.numVars(),
              DB.numHeaps(), Dir.c_str());
  return 0;
}
