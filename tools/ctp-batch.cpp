//===- tools/ctp-batch.cpp - Supervised evaluation-matrix driver ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Runs the paper's Figure 6 evaluation matrix — presets × context
// configurations × back-ends — as fault-isolated ctp-analyze child
// processes under a watchdog supervisor (support/Supervisor.h): kernel
// rlimits, heartbeat stall detection, crash triage, bounded retry with
// checkpoint resume then ladder descent, and a durable JSONL journal that
// makes the whole batch resumable if the supervisor itself is killed.
//
// Usage:
//   ctp-batch --work DIR [matrix options] [policy options]
//     --work DIR           work tree (journal.jsonl, report.json, per-job
//                          checkpoints and logs); created if missing
//     --presets a,b,...    preset axis (default: antlr,luindex,pmd)
//     --configs a,b,...    config axis (default: 2-object+H,insensitive)
//     --backends a,b,...   backend axis: native,datalog (default: native)
//     --plan FILE          job list from a TSV plan file instead of the
//                          cross product: "preset<TAB>config[<TAB>backend]"
//     --analyze PATH       ctp-analyze binary (default: ./ctp-analyze
//                          next to this binary, else $CTP_ANALYZE)
//     --deadline-ms N, --max-derivations N, --max-tuples N
//                          per-child analysis budget (forwarded)
//     --checkpoint-every N periodic snapshot cadence (default 2000)
//     --mem-limit-mb N     RLIMIT_AS per child, megabytes (0 = unlimited).
//                          Also derives a cooperative --mem-budget-mb at
//                          ~85% of the rlimit for the child's in-process
//                          memory governor, so children checkpoint and
//                          degrade at a watermark instead of dying on
//                          bad_alloc at the hard ceiling (the rlimit
//                          stays as the backstop)
//     --cpu-limit-s N      RLIMIT_CPU per child, seconds (0 = unlimited)
//     --stall-timeout-ms N SIGKILL after a silent heartbeat this long
//                          (default 10000; 0 disables the watchdog)
//     --job-timeout-ms N   per-attempt wall cap (default 0 = none)
//     --retries N          retries after the initial attempt (default 3)
//     --backoff-ms N       base retry backoff, doubling per retry
//     --chaos              SIGKILL children at seeded random intervals
//     --seed N             chaos schedule seed (default 1)
//     --chaos-kills N      total chaos kills across the batch (default 4)
//     --fresh              ignore an existing journal (truncate) instead
//                          of resuming from it
//     -v                   narrate every attempt to stderr
//
// The consolidated matrix report is printed as a table on stdout and
// written as JSON to <work>/report.json. Re-invoking over the same work
// dir resumes: jobs with a terminal journal record are not re-run and
// their report rows are byte-identical.
//
// Exit codes (support/ExitCodes.h): 0 every job completed, 3 all jobs
// answered but some degraded, 1 any job failed (or the batch could not
// start), 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "ctx/Config.h"
#include "support/ExitCodes.h"
#include "support/Suggest.h"
#include "support/Supervisor.h"
#include "workload/Presets.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace ctp;
using namespace ctp::batch;

namespace {

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s --work DIR [--presets a,b] [--configs a,b] "
      "[--backends a,b]\n"
      "          [--plan FILE] [--analyze PATH] [--deadline-ms N] "
      "[--max-derivations N]\n"
      "          [--max-tuples N] [--checkpoint-every N] "
      "[--mem-limit-mb N] [--cpu-limit-s N]\n"
      "          [--stall-timeout-ms N] [--job-timeout-ms N] "
      "[--retries N] [--backoff-ms N]\n"
      "          [--chaos] [--seed N] [--chaos-kills N] [--fresh] [-v]\n"
      "  exit codes: 0 all completed, 3 some degraded, 1 any failed, "
      "2 usage\n",
      Prog);
  return ExitUsage;
}

bool parseCount(const char *S, std::uint64_t &Out) {
  if (!S || *S < '0' || *S > '9')
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

std::vector<std::string> splitCsv(const std::string &S) {
  std::vector<std::string> Out;
  std::size_t At = 0;
  while (At <= S.size()) {
    std::size_t Comma = S.find(',', At);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > At)
      Out.push_back(S.substr(At, Comma - At));
    At = Comma + 1;
  }
  return Out;
}

/// Default ctp-analyze discovery: sibling of this binary, then $PATH-less
/// $CTP_ANALYZE, then bare "ctp-analyze" in the working directory.
std::string findAnalyze(const char *Argv0) {
  if (const char *Env = std::getenv("CTP_ANALYZE"))
    if (*Env)
      return Env;
  std::string Self = Argv0;
  std::size_t Slash = Self.rfind('/');
  std::string Sibling = (Slash == std::string::npos
                             ? std::string("")
                             : Self.substr(0, Slash + 1)) +
                        "ctp-analyze";
  if (::access(Sibling.c_str(), X_OK) == 0)
    return Sibling;
  return "./ctp-analyze";
}

void logLine(const std::string &Line, void *) {
  std::fprintf(stderr, "ctp-batch: %s\n", Line.c_str());
}

} // namespace

int main(int argc, char **argv) {
  SupervisorOptions Opts;
  Opts.CheckpointEvery = 2000;
  std::vector<std::string> Presets = {"antlr", "luindex", "pmd"};
  std::vector<std::string> Configs = {"2-object+H", "insensitive"};
  std::vector<std::string> Backends = {"native"};
  std::string PlanFile;
  std::uint64_t MemLimitMb = 0;
  bool Fresh = false, Verbose = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg.c_str());
        return nullptr;
      }
      return argv[++I];
    };
    auto NextCount = [&](std::uint64_t &Out) {
      const char *V = Next();
      if (!V)
        return false;
      if (!parseCount(V, Out)) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got '%s'\n",
                     Arg.c_str(), V);
        return false;
      }
      return true;
    };
    const char *V = nullptr;
    if (Arg == "--work") {
      if (!(V = Next()))
        return usage(argv[0]);
      Opts.WorkDir = V;
    } else if (Arg == "--presets") {
      if (!(V = Next()))
        return usage(argv[0]);
      Presets = splitCsv(V);
    } else if (Arg == "--configs") {
      if (!(V = Next()))
        return usage(argv[0]);
      Configs = splitCsv(V);
    } else if (Arg == "--backends") {
      if (!(V = Next()))
        return usage(argv[0]);
      Backends = splitCsv(V);
    } else if (Arg == "--plan") {
      if (!(V = Next()))
        return usage(argv[0]);
      PlanFile = V;
    } else if (Arg == "--analyze") {
      if (!(V = Next()))
        return usage(argv[0]);
      Opts.AnalyzePath = V;
    } else if (Arg == "--deadline-ms") {
      if (!NextCount(Opts.DeadlineMs))
        return usage(argv[0]);
    } else if (Arg == "--max-derivations") {
      if (!NextCount(Opts.MaxDerivations))
        return usage(argv[0]);
    } else if (Arg == "--max-tuples") {
      if (!NextCount(Opts.MaxTuples))
        return usage(argv[0]);
    } else if (Arg == "--checkpoint-every") {
      if (!NextCount(Opts.CheckpointEvery))
        return usage(argv[0]);
    } else if (Arg == "--mem-limit-mb") {
      if (!NextCount(MemLimitMb))
        return usage(argv[0]);
    } else if (Arg == "--cpu-limit-s") {
      if (!NextCount(Opts.CpuLimitSeconds))
        return usage(argv[0]);
    } else if (Arg == "--stall-timeout-ms") {
      if (!NextCount(Opts.StallTimeoutMs))
        return usage(argv[0]);
    } else if (Arg == "--job-timeout-ms") {
      if (!NextCount(Opts.JobTimeoutMs))
        return usage(argv[0]);
    } else if (Arg == "--retries") {
      std::uint64_t N = 0;
      if (!NextCount(N))
        return usage(argv[0]);
      Opts.MaxRetries = static_cast<int>(N);
    } else if (Arg == "--backoff-ms") {
      if (!NextCount(Opts.BackoffMs))
        return usage(argv[0]);
    } else if (Arg == "--chaos") {
      Opts.Chaos = true;
    } else if (Arg == "--seed") {
      if (!NextCount(Opts.Seed))
        return usage(argv[0]);
    } else if (Arg == "--chaos-kills") {
      std::uint64_t N = 0;
      if (!NextCount(N))
        return usage(argv[0]);
      Opts.ChaosKills = static_cast<int>(N);
    } else if (Arg == "--fresh") {
      Fresh = true;
    } else if (Arg == "-v") {
      Verbose = true;
    } else {
      static const std::vector<std::string> Flags = {
          "--work",           "--presets",          "--configs",
          "--backends",       "--plan",             "--analyze",
          "--deadline-ms",    "--max-derivations",  "--max-tuples",
          "--checkpoint-every", "--mem-limit-mb",   "--cpu-limit-s",
          "--stall-timeout-ms", "--job-timeout-ms", "--retries",
          "--backoff-ms",     "--chaos",            "--seed",
          "--chaos-kills",    "--fresh",            "-v"};
      std::fprintf(stderr, "error: unknown option '%s'%s\n", Arg.c_str(),
                   support::didYouMean(Arg, Flags).c_str());
      return usage(argv[0]);
    }
  }
  if (Opts.WorkDir.empty()) {
    std::fprintf(stderr, "error: --work DIR is required\n");
    return usage(argv[0]);
  }
  Opts.MemLimitBytes = MemLimitMb * 1024 * 1024;
  if (Opts.AnalyzePath.empty())
    Opts.AnalyzePath = findAnalyze(argv[0]);

  std::vector<JobSpec> Jobs;
  if (!PlanFile.empty()) {
    std::string Err = loadPlan(PlanFile, Jobs);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitUsage;
    }
  } else {
    // Validate every axis up front with suggestions: a typo'd cell would
    // otherwise burn a full child-retry cycle before surfacing, and the
    // child's diagnostic names neither the axis nor the alternatives.
    for (const std::string &P : Presets) {
      bool Known = false;
      for (const std::string &N : workload::presetNames())
        Known |= N == P;
      if (!Known) {
        std::fprintf(stderr, "error: unknown preset '%s'%s\n", P.c_str(),
                     support::didYouMean(P, workload::presetNames()).c_str());
        return usage(argv[0]);
      }
    }
    for (const std::string &C : Configs) {
      ctx::Config Cfg;
      if (!ctx::configByName(C, ctx::Abstraction::TransformerString, Cfg)) {
        std::fprintf(stderr, "error: unknown config '%s'%s\n", C.c_str(),
                     support::didYouMean(C, ctx::configNames()).c_str());
        return usage(argv[0]);
      }
    }
    static const std::vector<std::string> KnownBackends = {"native",
                                                           "datalog"};
    for (const std::string &B : Backends)
      if (B != "native" && B != "datalog") {
        std::fprintf(stderr, "error: unknown backend '%s'%s\n", B.c_str(),
                     support::didYouMean(B, KnownBackends).c_str());
        return usage(argv[0]);
      }
    Jobs = expandMatrix(Presets, Configs, Backends);
  }
  if (Jobs.empty()) {
    std::fprintf(stderr, "error: empty job matrix\n");
    return ExitUsage;
  }

  if (Fresh)
    std::remove(journalPath(Opts.WorkDir).c_str());

  std::printf("ctp-batch: %zu job(s), analyze=%s, work=%s%s\n",
              Jobs.size(), Opts.AnalyzePath.c_str(), Opts.WorkDir.c_str(),
              Opts.Chaos ? ", chaos armed" : "");

  Supervisor Sup(Opts);
  if (Verbose)
    Sup.setLogger(logLine, nullptr);
  std::string Err;
  BatchReport Report = Sup.run(Jobs, Err);
  if (!Err.empty()) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return ExitError;
  }

  std::printf("\n%s", Report.renderTable().c_str());
  {
    std::ofstream Out(Opts.WorkDir + "/report.json",
                      std::ios::binary | std::ios::trunc);
    Out << Report.renderJson();
    if (!Out.good())
      std::fprintf(stderr, "warning: cannot write %s/report.json\n",
                   Opts.WorkDir.c_str());
  }

  if (Report.NumFailed != 0)
    return ExitError;
  if (Report.NumDegraded != 0)
    return ExitDegraded;
  return ExitOk;
}
