//===- tools/ctp-analyze.cpp - Command-line analysis driver ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Runs one analysis configuration over a facts directory (or a built-in
// synthetic preset) and reports relation sizes, timing, and optionally the
// context-insensitive points-to sets.
//
// Usage:
//   ctp-analyze [options]
//     --facts DIR          read Doop-style .facts files from DIR
//     --preset NAME        use a built-in workload (antlr, bloat, chart,
//                          eclipse, luindex, pmd, xalan)
//     --config NAME        1-call | 1-call+H | 1-object | 2-object+H |
//                          2-type+H | 2-hybrid+H | cutshortcut |
//                          insensitive | unify (default 2-object+H)
//     --abstraction A      cs (context strings) | ts (transformer strings;
//                          default)
//     --collapse           enable subsumption collapsing (ts only)
//     --datalog            evaluate through the generic Datalog engine
//     --deadline-ms N      wall-clock budget for the solve (0 = unlimited)
//     --max-derivations N  rule-firing cap (0 = unlimited)
//     --max-tuples N       derived-tuple (approx. memory) cap
//     --mem-budget-mb N    RSS budget enforced by the in-process memory
//                          governor: watermark pressure checkpoints and
//                          (with --fallback) descends the ladder instead
//                          of dying on bad_alloc
//     --fallback           on budget exhaustion degrade down the
//                          configuration ladder instead of stopping
//     --lenient            skip (and count) malformed fact lines instead
//                          of aborting the read
//     --dump-pts           print the CI points-to set of every variable
//     --dump-calls         print the CI call graph
//     --out DIR            write all derived relations as TSV into DIR
//     --checkpoint-dir DIR crash-safe checkpointing: budget-exhausted runs
//                          leave a resumable snapshot in DIR
//     --checkpoint-every N also snapshot periodically, every ~N derivations
//     --resume             continue from DIR's snapshot if it validates
//                          (corruption/mismatch warns and cold-starts)
//
// Exit codes (support/ExitCodes.h): 0 converged at the requested
// configuration, 1 runtime error, 2 usage error, 3 completed degraded
// (budget-truncated results or a fallback rung below the requested
// configuration answered; with --checkpoint-dir a snapshot was saved).
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/DatalogFrontend.h"
#include "analysis/ResultsIO.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/Budget.h"
#include "support/ExitCodes.h"
#include "support/FaultInjection.h"
#include "support/Memory.h"
#include "support/Suggest.h"
#include "support/Supervisor.h"
#include "workload/Presets.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

using namespace ctp;

namespace {

int usage(const char *Prog) {
  std::string Presets;
  for (const std::string &N : workload::presetNames()) {
    if (!Presets.empty())
      Presets += ", ";
    Presets += N;
  }
  std::fprintf(
      stderr,
      "usage: %s [--facts DIR | --preset NAME] [--config NAME] "
      "[--abstraction cs|ts]\n"
      "          [--collapse] [--datalog] [--deadline-ms N] "
      "[--max-derivations N]\n"
      "          [--max-tuples N] [--mem-budget-mb N] [--fallback] "
      "[--lenient]\n"
      "          [--dump-pts] [--dump-calls]\n"
      "          [--out DIR] [--checkpoint-dir DIR] [--checkpoint-every N] "
      "[--resume]\n"
      "  presets: %s\n"
      "  configs: 1-call, 1-call+H, 1-object, 2-object+H, 2-type+H,\n"
      "           2-hybrid+H, cutshortcut, insensitive, unify\n"
      "  exit codes: 0 converged, 1 error, 2 usage, 3 completed "
      "degraded\n",
      Prog, Presets.c_str());
  return ExitUsage;
}

//===----------------------------------------------------------------------===//
// Termination-reason sidecar.
//
// A supervised child that dies of allocation failure used to be triaged
// by grepping "bad_alloc" off a truncatable stderr tail. Instead the
// child itself records how it ended, structured, next to its heartbeat
// file: one line at normal exit, and — via a terminate handler — a
// best-effort "reason=bad_alloc" even on the SIGABRT path, so the
// supervisor's rlimit-mem triage no longer depends on what the C++
// runtime happened to print.
//===----------------------------------------------------------------------===//

std::string TermSidecarPath; // Empty when unsupervised.

void writeTermSidecar(const std::string &Line) {
  if (TermSidecarPath.empty())
    return;
  if (std::FILE *F = std::fopen(TermSidecarPath.c_str(), "w")) {
    std::fprintf(F, "%s\n", Line.c_str());
    std::fclose(F);
  }
}

std::terminate_handler PrevTerminate = nullptr;

[[noreturn]] void terminateWithSidecar() {
  // Name the in-flight exception without allocating; under genuine
  // exhaustion even fopen may fail, and that's fine — the stderr grep
  // remains as the supervisor's fallback.
  const char *Reason = "terminate";
  if (std::exception_ptr E = std::current_exception()) {
    try {
      std::rethrow_exception(E);
    } catch (const std::bad_alloc &) {
      Reason = "bad_alloc";
    } catch (...) {
    }
  }
  writeTermSidecar(std::string("reason=") + Reason);
  if (PrevTerminate)
    PrevTerminate();
  std::abort();
}

/// Parses a non-negative integer flag value; \returns false on garbage.
bool parseCount(const char *S, std::uint64_t &Out) {
  if (!S || !*S)
    return false;
  // strtoull silently wraps "-5"; digits only.
  if (*S < '0' || *S > '9')
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string FactsDir, Preset, OutDir, ConfigName = "2-object+H";
  ctx::Abstraction Abs = ctx::Abstraction::TransformerString;
  bool Collapse = false, UseDatalog = false, DumpPts = false,
       DumpCalls = false, Fallback = false, Lenient = false,
       Resume = false;
  BudgetSpec Budget;
  analysis::CheckpointPolicy Ckpt;

  // Liveness for a supervising ctp-batch: beat a heartbeat file from the
  // solver's budget poll points when CTP_HEARTBEAT_FILE is set. The same
  // supervision contract adds the termination-reason sidecar next to the
  // heartbeat file (see above).
  heartbeat::installFromEnv();
  if (const char *Hb = std::getenv("CTP_HEARTBEAT_FILE"))
    if (*Hb) {
      TermSidecarPath = std::string(Hb) + batch::termSidecarSuffix();
      PrevTerminate = std::set_terminate(terminateWithSidecar);
    }

  // Test hook: simulated memory-pressure spikes or a forced bad_alloc at
  // the governor's poll points ("soft@N", "hard@N", "badalloc@N",
  // optionally "xR" for a sustained window).
  if (const char *Fault = std::getenv("CTP_MEM_FAULT"))
    if (*Fault && !fault::armMemFaultByName(Fault))
      std::fprintf(stderr,
                   "warning: unknown CTP_MEM_FAULT '%s' ignored\n", Fault);

  // Test hook: arm a sticky snapshot-writer fault so the crash-resume
  // loop and the recovery tests can exercise torn/short/bit-flipped
  // writes through the real binary.
  if (const char *Fault = std::getenv("CTP_SNAPSHOT_FAULT"))
    if (*Fault && !fault::armSnapshotFaultByName(Fault, /*Sticky=*/true))
      std::fprintf(stderr,
                   "warning: unknown CTP_SNAPSHOT_FAULT '%s' ignored\n",
                   Fault);

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg.c_str());
        return nullptr;
      }
      return argv[++I];
    };
    auto NextCount = [&](std::uint64_t &Out) {
      const char *V = Next();
      if (!V)
        return false;
      if (!parseCount(V, Out)) {
        std::fprintf(stderr, "error: %s expects a non-negative integer, "
                             "got '%s'\n",
                     Arg.c_str(), V);
        return false;
      }
      return true;
    };
    if (Arg == "--facts") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      FactsDir = V;
    } else if (Arg == "--preset") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Preset = V;
    } else if (Arg == "--config") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      ConfigName = V;
    } else if (Arg == "--abstraction") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      if (std::strcmp(V, "cs") == 0)
        Abs = ctx::Abstraction::ContextString;
      else if (std::strcmp(V, "ts") == 0)
        Abs = ctx::Abstraction::TransformerString;
      else {
        std::fprintf(stderr, "error: unknown abstraction '%s'%s\n", V,
                     support::didYouMean(V, {"cs", "ts"}).c_str());
        return usage(argv[0]);
      }
    } else if (Arg == "--collapse") {
      Collapse = true;
    } else if (Arg == "--datalog") {
      UseDatalog = true;
    } else if (Arg == "--deadline-ms") {
      if (!NextCount(Budget.DeadlineMs))
        return usage(argv[0]);
    } else if (Arg == "--max-derivations") {
      if (!NextCount(Budget.MaxDerivations))
        return usage(argv[0]);
    } else if (Arg == "--max-tuples") {
      if (!NextCount(Budget.MaxTuples))
        return usage(argv[0]);
    } else if (Arg == "--mem-budget-mb") {
      if (!NextCount(Budget.MemBudgetMb))
        return usage(argv[0]);
    } else if (Arg == "--fallback") {
      Fallback = true;
    } else if (Arg == "--lenient") {
      Lenient = true;
    } else if (Arg == "--dump-pts") {
      DumpPts = true;
    } else if (Arg == "--dump-calls") {
      DumpCalls = true;
    } else if (Arg == "--out") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      OutDir = V;
    } else if (Arg == "--checkpoint-dir") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Ckpt.Dir = V;
    } else if (Arg == "--checkpoint-every") {
      if (!NextCount(Ckpt.EveryDerivations))
        return usage(argv[0]);
    } else if (Arg == "--resume") {
      Resume = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }
  if (FactsDir.empty() == Preset.empty()) {
    std::fprintf(stderr, "error: exactly one of --facts / --preset is "
                         "required\n");
    return usage(argv[0]);
  }
  if ((Resume || Ckpt.EveryDerivations != 0) && !Ckpt.enabled()) {
    std::fprintf(stderr, "error: --resume / --checkpoint-every require "
                         "--checkpoint-dir\n");
    return usage(argv[0]);
  }

  facts::FactDB DB;
  if (!FactsDir.empty()) {
    facts::FactsReadOptions ReadOpts;
    ReadOpts.Lenient = Lenient;
    facts::FactsReadReport Report;
    std::string Err = facts::readFactsDir(FactsDir, DB, ReadOpts, &Report);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
    if (Report.SkippedLines != 0) {
      std::fprintf(stderr, "warning: skipped %zu malformed fact line(s)\n",
                   Report.SkippedLines);
      for (const std::string &W : Report.Warnings)
        std::fprintf(stderr, "warning:   %s\n", W.c_str());
    }
  } else {
    bool Known = false;
    for (const std::string &N : workload::presetNames())
      Known |= N == Preset;
    if (!Known) {
      std::fprintf(
          stderr, "error: unknown preset '%s'%s\n", Preset.c_str(),
          support::didYouMean(Preset, workload::presetNames()).c_str());
      return ExitError;
    }
    DB = facts::extract(workload::generatePreset(Preset));
  }

  ctx::Config Cfg;
  if (!ctx::configByName(ConfigName, Abs, Cfg)) {
    std::fprintf(
        stderr, "error: unknown config '%s'%s\n", ConfigName.c_str(),
        support::didYouMean(ConfigName, ctx::configNames()).c_str());
    return ExitError;
  }
  std::string CfgErr = Cfg.validate();
  if (!CfgErr.empty()) {
    std::fprintf(stderr, "error: %s\n", CfgErr.c_str());
    return ExitError;
  }

  std::printf("input: %zu methods, %zu variables, %zu heap sites, %zu "
              "input facts\n",
              DB.numMethods(), DB.numVars(), DB.numHeaps(),
              DB.numInputFacts());
  std::printf("config: %s via %s%s\n", Cfg.name().c_str(),
              UseDatalog ? "generic datalog engine" : "specialized solver",
              Collapse ? ", subsumption collapsing" : "");

  analysis::Results R;
  bool Degraded = false;
  bool SnapshotSaved = false;
  if (Fallback) {
    analysis::FallbackOptions FOpts;
    FOpts.Budget = Budget;
    FOpts.UseDatalog = UseDatalog;
    FOpts.Solver.CollapseSubsumedPts = Collapse;
    FOpts.Checkpoint = Ckpt;
    FOpts.Resume = Resume;
    analysis::FallbackOutcome O = analysis::solveWithFallback(DB, Cfg, FOpts);
    if (!O.ResumeWarning.empty())
      std::fprintf(stderr, "warning: %s\n", O.ResumeWarning.c_str());
    if (Resume)
      std::printf("resume: %s\n", analysis::resumeStatusName(O.Resume));
    std::printf("fallback ladder:\n");
    for (std::size_t A = 0; A < O.Attempts.size(); ++A) {
      const analysis::RungAttempt &At = O.Attempts[A];
      std::printf("  rung %zu: %-18s %-17s %.1f ms, %zu derivations%s\n",
                  A, At.Config.name().c_str(),
                  terminationReasonName(At.Term), At.Seconds * 1e3,
                  At.Derivations, A == O.RungUsed ? "  <- answered" : "");
    }
    Degraded = O.Degraded;
    SnapshotSaved = O.SnapshotSaved;
    R = std::move(O.R);
  } else {
    // A direct run threads the checkpoint policy straight into the chosen
    // back-end; the probe pre-validates any snapshot so corruption or a
    // mismatched fact set warns and cold-starts instead of crashing.
    analysis::SnapshotProbe Probe;
    if (Resume) {
      Probe = analysis::probeSnapshot(Ckpt.Dir, DB, Cfg, UseDatalog,
                                      !UseDatalog && Collapse);
      if (!Probe.Warning.empty())
        std::fprintf(stderr, "warning: %s\n", Probe.Warning.c_str());
      std::printf("resume: %s\n", analysis::resumeStatusName(Probe.Status));
    }
    const analysis::SolverSnapshot *Snap =
        Probe.Status == analysis::ResumeStatus::Resumed ? &Probe.Snap
                                                        : nullptr;
    if (UseDatalog) {
      analysis::DatalogSolveOptions DOpts;
      DOpts.Budget = Budget;
      DOpts.Checkpoint = Ckpt;
      DOpts.Resume = Snap;
      R = analysis::solveViaDatalog(DB, Cfg, DOpts);
    } else {
      analysis::SolverOptions Opts;
      Opts.CollapseSubsumedPts = Collapse;
      Opts.Budget = Budget;
      Opts.Checkpoint = Ckpt;
      Opts.Resume = Snap;
      R = analysis::solve(DB, Cfg, Opts);
    }
    Degraded = R.Stat.Term != TerminationReason::Converged;
    if (Degraded && Ckpt.enabled())
      SnapshotSaved =
          std::ifstream(analysis::checkpointPath(Ckpt.Dir),
                        std::ios::binary)
              .is_open();
  }
  if (!R.Stat.CheckpointError.empty())
    std::fprintf(stderr, "warning: %s\n", R.Stat.CheckpointError.c_str());

  std::printf("termination: %s (%zu iterations, %zu derivations, "
              "%zu pending work items)\n",
              terminationReasonName(R.Stat.Term),
              R.Stat.Progress.Iterations, R.Stat.Progress.Derivations,
              R.Stat.Progress.PendingWork);
  if (R.Stat.Term != TerminationReason::Converged)
    std::printf("note: results are PARTIAL (a sound subset of the "
                "converged fixpoint)\n");

  std::printf("\nderived relations:\n");
  std::printf("  pts   %12zu\n", R.Stat.NumPts);
  std::printf("  hpts  %12zu\n", R.Stat.NumHpts);
  std::printf("  hload %12zu\n", R.Stat.NumHload);
  std::printf("  call  %12zu\n", R.Stat.NumCall);
  std::printf("  reach %12zu\n", R.Stat.NumReach);
  std::printf("  gpts  %12zu\n", R.Stat.NumGpts);
  std::printf("  total (pts+hpts+call) %zu\n", R.Stat.total());
  if (Collapse)
    std::printf("  collapsed pts facts  %zu\n", R.Stat.CollapsedPts);
  std::printf("time: %.1f ms, %zu distinct transformations, peak rss "
              "%llu MB\n",
              R.Stat.Seconds * 1e3, R.Stat.DomainSize,
              static_cast<unsigned long long>(memgov::peakRssBytes() >>
                                              20));

  if (!OutDir.empty()) {
    std::string Err = analysis::writeResultsDir(DB, R, OutDir);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
    std::printf("wrote derived relations to %s\n", OutDir.c_str());
  }

  if (DumpPts) {
    std::printf("\ncontext-insensitive points-to sets:\n");
    std::uint32_t Current = UINT32_MAX;
    for (const auto &P : R.ciPts()) {
      if (P[0] != Current) {
        if (Current != UINT32_MAX)
          std::printf("\n");
        std::printf("  %s ->", DB.VarNames[P[0]].c_str());
        Current = P[0];
      }
      std::printf(" %s", DB.HeapNames[P[1]].c_str());
    }
    if (Current != UINT32_MAX)
      std::printf("\n");
  }
  if (DumpCalls) {
    std::printf("\ncontext-insensitive call graph:\n");
    for (const auto &C : R.ciCall())
      std::printf("  %s -> %s\n", DB.InvokeNames[C[0]].c_str(),
                  DB.MethodNames[C[1]].c_str());
  }
  if (SnapshotSaved)
    std::printf("checkpoint saved to %s; re-run with --resume to "
                "continue\n",
                Ckpt.Dir.c_str());
  writeTermSidecar(
      std::string("reason=") + terminationReasonName(R.Stat.Term) +
      " degraded=" + (Degraded ? "1" : "0") + " peak_rss_mb=" +
      std::to_string(memgov::peakRssBytes() >> 20));
  return Degraded ? ExitDegraded : ExitOk;
}
