//===- tools/ctp-analyze.cpp - Command-line analysis driver ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Runs one analysis configuration over a facts directory (or a built-in
// synthetic preset) and reports relation sizes, timing, and optionally the
// context-insensitive points-to sets.
//
// Usage:
//   ctp-analyze [options]
//     --facts DIR          read Doop-style .facts files from DIR
//     --preset NAME        use a built-in workload (antlr, bloat, chart,
//                          eclipse, luindex, pmd, xalan)
//     --config NAME        1-call | 1-call+H | 1-object | 2-object+H |
//                          2-type+H | insensitive   (default 2-object+H)
//     --abstraction A      cs (context strings) | ts (transformer strings;
//                          default)
//     --collapse           enable subsumption collapsing (ts only)
//     --datalog            evaluate through the generic Datalog engine
//     --dump-pts           print the CI points-to set of every variable
//     --dump-calls         print the CI call graph
//     --out DIR            write all derived relations as TSV into DIR
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/ResultsIO.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "workload/Presets.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace ctp;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--facts DIR | --preset NAME] [--config NAME] "
               "[--abstraction cs|ts]\n"
               "          [--collapse] [--datalog] [--dump-pts] "
               "[--dump-calls]\n",
               Prog);
  return 2;
}

bool parseConfig(const std::string &Name, ctx::Abstraction A,
                 ctx::Config &Out) {
  if (Name == "1-call")
    Out = ctx::oneCall(A);
  else if (Name == "1-call+H")
    Out = ctx::oneCallH(A);
  else if (Name == "1-object")
    Out = ctx::oneObject(A);
  else if (Name == "2-object+H")
    Out = ctx::twoObjectH(A);
  else if (Name == "2-type+H")
    Out = ctx::twoTypeH(A);
  else if (Name == "2-hybrid+H")
    Out = ctx::twoHybridH(A);
  else if (Name == "insensitive")
    Out = ctx::insensitive(A);
  else
    return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string FactsDir, Preset, OutDir, ConfigName = "2-object+H";
  ctx::Abstraction Abs = ctx::Abstraction::TransformerString;
  bool Collapse = false, UseDatalog = false, DumpPts = false,
       DumpCalls = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        return nullptr;
      return argv[++I];
    };
    if (Arg == "--facts") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      FactsDir = V;
    } else if (Arg == "--preset") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Preset = V;
    } else if (Arg == "--config") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      ConfigName = V;
    } else if (Arg == "--abstraction") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      if (std::strcmp(V, "cs") == 0)
        Abs = ctx::Abstraction::ContextString;
      else if (std::strcmp(V, "ts") == 0)
        Abs = ctx::Abstraction::TransformerString;
      else
        return usage(argv[0]);
    } else if (Arg == "--collapse") {
      Collapse = true;
    } else if (Arg == "--datalog") {
      UseDatalog = true;
    } else if (Arg == "--dump-pts") {
      DumpPts = true;
    } else if (Arg == "--dump-calls") {
      DumpCalls = true;
    } else if (Arg == "--out") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      OutDir = V;
    } else {
      return usage(argv[0]);
    }
  }
  if (FactsDir.empty() == Preset.empty()) {
    std::fprintf(stderr, "error: exactly one of --facts / --preset is "
                         "required\n");
    return usage(argv[0]);
  }

  facts::FactDB DB;
  if (!FactsDir.empty()) {
    std::string Err = facts::readFactsDir(FactsDir, DB);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  } else {
    bool Known = false;
    for (const std::string &N : workload::presetNames())
      Known |= N == Preset;
    if (!Known) {
      std::fprintf(stderr, "error: unknown preset '%s'\n", Preset.c_str());
      return 1;
    }
    DB = facts::extract(workload::generatePreset(Preset));
  }

  ctx::Config Cfg;
  if (!parseConfig(ConfigName, Abs, Cfg)) {
    std::fprintf(stderr, "error: unknown config '%s'\n",
                 ConfigName.c_str());
    return 1;
  }
  std::string CfgErr = Cfg.validate();
  if (!CfgErr.empty()) {
    std::fprintf(stderr, "error: %s\n", CfgErr.c_str());
    return 1;
  }

  std::printf("input: %zu methods, %zu variables, %zu heap sites, %zu "
              "input facts\n",
              DB.numMethods(), DB.numVars(), DB.numHeaps(),
              DB.numInputFacts());
  std::printf("config: %s via %s%s\n", Cfg.name().c_str(),
              UseDatalog ? "generic datalog engine" : "specialized solver",
              Collapse ? ", subsumption collapsing" : "");

  analysis::Results R;
  if (UseDatalog) {
    R = analysis::solveViaDatalog(DB, Cfg);
  } else {
    analysis::SolverOptions Opts;
    Opts.CollapseSubsumedPts = Collapse;
    R = analysis::solve(DB, Cfg, Opts);
  }

  std::printf("\nderived relations:\n");
  std::printf("  pts   %12zu\n", R.Stat.NumPts);
  std::printf("  hpts  %12zu\n", R.Stat.NumHpts);
  std::printf("  hload %12zu\n", R.Stat.NumHload);
  std::printf("  call  %12zu\n", R.Stat.NumCall);
  std::printf("  reach %12zu\n", R.Stat.NumReach);
  std::printf("  gpts  %12zu\n", R.Stat.NumGpts);
  std::printf("  total (pts+hpts+call) %zu\n", R.Stat.total());
  if (Collapse)
    std::printf("  collapsed pts facts  %zu\n", R.Stat.CollapsedPts);
  std::printf("time: %.1f ms, %zu distinct transformations\n",
              R.Stat.Seconds * 1e3, R.Stat.DomainSize);

  if (!OutDir.empty()) {
    std::string Err = analysis::writeResultsDir(DB, R, OutDir);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("wrote derived relations to %s\n", OutDir.c_str());
  }

  if (DumpPts) {
    std::printf("\ncontext-insensitive points-to sets:\n");
    std::uint32_t Current = UINT32_MAX;
    for (const auto &P : R.ciPts()) {
      if (P[0] != Current) {
        if (Current != UINT32_MAX)
          std::printf("\n");
        std::printf("  %s ->", DB.VarNames[P[0]].c_str());
        Current = P[0];
      }
      std::printf(" %s", DB.HeapNames[P[1]].c_str());
    }
    if (Current != UINT32_MAX)
      std::printf("\n");
  }
  if (DumpCalls) {
    std::printf("\ncontext-insensitive call graph:\n");
    for (const auto &C : R.ciCall())
      std::printf("  %s -> %s\n", DB.InvokeNames[C[0]].c_str(),
                  DB.MethodNames[C[1]].c_str());
  }
  return 0;
}
