//===- tools/ctp-lint.cpp - Points-to-powered checker driver --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Runs the checker suite (escape analysis, race-candidate detection,
// cast safety, taint flow) over one analysis configuration and emits the
// findings as human-readable text or SARIF 2.1.0 JSON. Output is
// byte-deterministic: two runs over the same input produce identical
// bytes.
//
// Usage:
//   ctp-lint [options]
//     --facts DIR          read Doop-style .facts files from DIR
//     --preset NAME        use a built-in workload (antlr, bloat, chart,
//                          eclipse, luindex, pmd, xalan)
//     --config NAME        1-call | 1-call+H | 1-object | 2-object+H |
//                          2-type+H | 2-hybrid+H | cutshortcut |
//                          insensitive | unify (default 2-object+H)
//     --abstraction A      cs (context strings) | ts (transformer strings;
//                          default)
//     --collapse           enable subsumption collapsing (ts only)
//     --datalog            evaluate through the generic Datalog engine
//     --deadline-ms N      wall-clock budget for the solve (0 = unlimited)
//     --max-derivations N  rule-firing cap (0 = unlimited)
//     --max-tuples N       derived-tuple (approx. memory) cap
//     --fallback           on budget exhaustion degrade down the
//                          configuration ladder instead of stopping
//     --lenient            skip (and count) malformed fact lines instead
//                          of aborting the read
//     --checks LIST        comma-separated subset of escape,race,cast,
//                          taint (default: all)
//     --provenance         record first-derivation provenance during the
//                          solve (native back-end only); --explain then
//                          appends the sink fact's derivation chain
//     --explain ID         instead of the report, print the witness path
//                          of the finding with stable id ID
//     --format FMT         human (default) | sarif
//     --out FILE           write the report to FILE instead of stdout
//
// Exit codes: 0 converged and no warnings, 1 runtime error, 2 usage
// error, 3 completed degraded (budget-truncated or a fallback rung below
// the requested configuration answered — findings may be incomplete),
// 4 converged with at least one warning-severity finding. A run that is
// both degraded and warned exits 3 — degraded wins; see
// support/ExitCodes.h (lintExitCode).
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "clients/CastSafety.h"
#include "clients/Diagnostics.h"
#include "clients/Escape.h"
#include "clients/RaceCandidates.h"
#include "clients/Taint.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/Budget.h"
#include "support/ExitCodes.h"
#include "support/Suggest.h"
#include "workload/Presets.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

using namespace ctp;

namespace {

int usage(const char *Prog) {
  std::string Presets;
  for (const std::string &N : workload::presetNames()) {
    if (!Presets.empty())
      Presets += ", ";
    Presets += N;
  }
  std::fprintf(
      stderr,
      "usage: %s [--facts DIR | --preset NAME] [--config NAME] "
      "[--abstraction cs|ts]\n"
      "          [--collapse] [--datalog] [--deadline-ms N] "
      "[--max-derivations N]\n"
      "          [--max-tuples N] [--fallback] [--lenient]\n"
      "          [--checks escape,race,cast,taint] [--provenance] "
      "[--explain ID]\n"
      "          [--format human|sarif] [--out FILE]\n"
      "  presets: %s\n"
      "  configs: 1-call, 1-call+H, 1-object, 2-object+H, 2-type+H,\n"
      "           2-hybrid+H, cutshortcut, insensitive, unify\n"
      "  exit codes: 0 clean, 1 error, 2 usage, 3 completed degraded,\n"
      "              4 converged with warnings (3 wins over 4)\n",
      Prog, Presets.c_str());
  return ExitUsage;
}

bool parseCount(const char *S, std::uint64_t &Out) {
  if (!S || !*S)
    return false;
  if (*S < '0' || *S > '9')
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

struct CheckSet {
  bool Escape = true;
  bool Race = true;
  bool Cast = true;
  bool Taint = true;
};

/// Parses "escape,race,cast,taint" subsets; \returns false on an unknown
/// name or an empty selection, leaving the offender in \p BadName (empty
/// when the list merely selected nothing).
bool parseChecks(const std::string &List, CheckSet &Out,
                 std::string &BadName) {
  Out = {false, false, false, false};
  BadName.clear();
  std::size_t Pos = 0;
  while (Pos <= List.size()) {
    std::size_t Comma = List.find(',', Pos);
    std::string Name = List.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name == "escape")
      Out.Escape = true;
    else if (Name == "race")
      Out.Race = true;
    else if (Name == "cast")
      Out.Cast = true;
    else if (Name == "taint")
      Out.Taint = true;
    else if (Name == "all")
      Out = {true, true, true, true};
    else if (!Name.empty()) {
      BadName = Name;
      return false;
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Out.Escape || Out.Race || Out.Cast || Out.Taint;
}

} // namespace

int main(int argc, char **argv) {
  std::string FactsDir, Preset, OutFile, ExplainId, ConfigName = "2-object+H",
                                         Format = "human";
  ctx::Abstraction Abs = ctx::Abstraction::TransformerString;
  bool Collapse = false, UseDatalog = false, Fallback = false,
       Lenient = false, Provenance = false;
  BudgetSpec Budget;
  CheckSet Checks;

  // Liveness for a supervising ctp-batch: beat a heartbeat file from the
  // solver's budget poll points when CTP_HEARTBEAT_FILE is set.
  heartbeat::installFromEnv();

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", Arg.c_str());
        return nullptr;
      }
      return argv[++I];
    };
    auto NextCount = [&](std::uint64_t &Out) {
      const char *V = Next();
      if (!V)
        return false;
      if (!parseCount(V, Out)) {
        std::fprintf(stderr, "error: %s expects a non-negative integer, "
                             "got '%s'\n",
                     Arg.c_str(), V);
        return false;
      }
      return true;
    };
    if (Arg == "--facts") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      FactsDir = V;
    } else if (Arg == "--preset") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Preset = V;
    } else if (Arg == "--config") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      ConfigName = V;
    } else if (Arg == "--abstraction") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      if (std::strcmp(V, "cs") == 0)
        Abs = ctx::Abstraction::ContextString;
      else if (std::strcmp(V, "ts") == 0)
        Abs = ctx::Abstraction::TransformerString;
      else {
        std::fprintf(stderr, "error: unknown abstraction '%s'%s\n", V,
                     support::didYouMean(V, {"cs", "ts"}).c_str());
        return usage(argv[0]);
      }
    } else if (Arg == "--collapse") {
      Collapse = true;
    } else if (Arg == "--datalog") {
      UseDatalog = true;
    } else if (Arg == "--deadline-ms") {
      if (!NextCount(Budget.DeadlineMs))
        return usage(argv[0]);
    } else if (Arg == "--max-derivations") {
      if (!NextCount(Budget.MaxDerivations))
        return usage(argv[0]);
    } else if (Arg == "--max-tuples") {
      if (!NextCount(Budget.MaxTuples))
        return usage(argv[0]);
    } else if (Arg == "--fallback") {
      Fallback = true;
    } else if (Arg == "--provenance") {
      Provenance = true;
    } else if (Arg == "--explain") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      ExplainId = V;
    } else if (Arg == "--lenient") {
      Lenient = true;
    } else if (Arg == "--checks") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      std::string BadName;
      if (!parseChecks(V, Checks, BadName)) {
        if (BadName.empty())
          std::fprintf(stderr, "error: --checks list '%s' selects "
                               "nothing\n",
                       V);
        else
          std::fprintf(stderr, "error: unknown check '%s'%s\n",
                       BadName.c_str(),
                       support::didYouMean(
                           BadName,
                           {"escape", "race", "cast", "taint", "all"})
                           .c_str());
        return usage(argv[0]);
      }
    } else if (Arg == "--format") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      Format = V;
      if (Format != "human" && Format != "sarif") {
        std::fprintf(stderr, "error: unknown format '%s'%s\n", V,
                     support::didYouMean(V, {"human", "sarif"}).c_str());
        return usage(argv[0]);
      }
    } else if (Arg == "--out") {
      const char *V = Next();
      if (!V)
        return usage(argv[0]);
      OutFile = V;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }
  if (FactsDir.empty() == Preset.empty()) {
    std::fprintf(stderr, "error: exactly one of --facts / --preset is "
                         "required\n");
    return usage(argv[0]);
  }

  facts::FactDB DB;
  if (!FactsDir.empty()) {
    facts::FactsReadOptions ReadOpts;
    ReadOpts.Lenient = Lenient;
    facts::FactsReadReport ReadReport;
    std::string Err = facts::readFactsDir(FactsDir, DB, ReadOpts, &ReadReport);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return ExitError;
    }
    if (ReadReport.SkippedLines != 0)
      std::fprintf(stderr, "warning: skipped %zu malformed fact line(s)\n",
                   ReadReport.SkippedLines);
  } else {
    bool Known = false;
    for (const std::string &N : workload::presetNames())
      Known |= N == Preset;
    if (!Known) {
      std::fprintf(
          stderr, "error: unknown preset '%s'%s\n", Preset.c_str(),
          support::didYouMean(Preset, workload::presetNames()).c_str());
      return ExitError;
    }
    DB = facts::extract(workload::generatePreset(Preset));
  }

  ctx::Config Cfg;
  if (!ctx::configByName(ConfigName, Abs, Cfg)) {
    std::fprintf(
        stderr, "error: unknown config '%s'%s\n", ConfigName.c_str(),
        support::didYouMean(ConfigName, ctx::configNames()).c_str());
    return ExitError;
  }
  std::string CfgErr = Cfg.validate();
  if (!CfgErr.empty()) {
    std::fprintf(stderr, "error: %s\n", CfgErr.c_str());
    return ExitError;
  }

  if (Provenance && (UseDatalog || Fallback)) {
    // The recorder hooks the native solver's insertion sites; the Datalog
    // engine (and the fallback ladder, which may route through it) does
    // not expose per-tuple firing order.
    std::fprintf(stderr, "warning: --provenance is native-solver-only; "
                         "recording disabled for this run\n");
    Provenance = false;
  }

  analysis::Results R;
  bool Degraded = false;
  if (Fallback) {
    analysis::FallbackOptions FOpts;
    FOpts.Budget = Budget;
    FOpts.UseDatalog = UseDatalog;
    FOpts.Solver.CollapseSubsumedPts = Collapse;
    analysis::FallbackOutcome O = analysis::solveWithFallback(DB, Cfg, FOpts);
    Degraded = O.Degraded;
    R = std::move(O.R);
  } else {
    if (UseDatalog) {
      R = analysis::solveViaDatalog(DB, Cfg, nullptr, Budget);
    } else {
      analysis::SolverOptions Opts;
      Opts.CollapseSubsumedPts = Collapse;
      Opts.Budget = Budget;
      Opts.Provenance.Enabled = Provenance;
      R = analysis::solve(DB, Cfg, Opts);
    }
    Degraded = R.Stat.Term != TerminationReason::Converged;
  }
  if (!R.Stat.ProvenanceDropped.empty())
    std::fprintf(stderr, "warning: %s\n", R.Stat.ProvenanceDropped.c_str());
  if (Degraded)
    std::fprintf(stderr,
                 "warning: analysis did not converge at the requested "
                 "configuration; findings may be incomplete\n");

  clients::SourceMap SM(DB);
  clients::Report Report;
  std::map<std::string, clients::TaintEndpoint> Endpoints;
  if (Checks.Escape)
    clients::checkEscape(DB, R, SM, Report);
  if (Checks.Race)
    clients::checkRaces(DB, R, SM, Report);
  if (Checks.Cast)
    clients::checkCastSafety(DB, R, SM, Report);
  if (Checks.Taint)
    clients::checkTaint(DB, R, SM, Report, &Endpoints);
  Report.finalize();

  std::string Rendered;
  if (!ExplainId.empty()) {
    Rendered = Report.renderExplain(ExplainId);
    if (Rendered.empty()) {
      std::fprintf(stderr, "error: no finding with id '%s'\n",
                   ExplainId.c_str());
      return ExitError;
    }
    // With provenance recorded, a taint finding's explanation also gets
    // the derivation chain of the sink-side points-to fact.
    auto EP = Endpoints.find(ExplainId);
    if (R.Prov && R.Dom && R.ReachCtxts && EP != Endpoints.end()) {
      // Pick the fact whose rendering is smallest — content-ordered, the
      // same tie-break the witness endpoint annotations use.
      std::uint32_t Node = analysis::ProvenanceGraph::InvalidNode;
      std::string Best;
      for (const auto &F : R.Pts)
        if (F.Var == EP->second.SinkVar && F.Heap == EP->second.Heap) {
          std::uint32_t N =
              R.Prov->lookup(analysis::ProvRel::Pts, analysis::keyOf(F));
          if (N == analysis::ProvenanceGraph::InvalidNode)
            continue;
          std::string S = R.Dom->toString(F.T);
          if (Node == analysis::ProvenanceGraph::InvalidNode || S < Best) {
            Node = N;
            Best = std::move(S);
          }
        }
      if (Node != analysis::ProvenanceGraph::InvalidNode)
        Rendered += "  derivation of the sink points-to fact:\n" +
                    analysis::renderProvenanceChain(*R.Prov, Node, DB,
                                                    *R.Dom, *R.ReachCtxts);
    }
  } else {
    Rendered = Format == "sarif" ? Report.renderSarif("ctp-lint", "1.0.0")
                                 : Report.renderHuman();
  }
  if (OutFile.empty()) {
    std::fwrite(Rendered.data(), 1, Rendered.size(), stdout);
  } else {
    std::ofstream OS(OutFile, std::ios::binary);
    if (!OS) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   OutFile.c_str());
      return ExitError;
    }
    OS << Rendered;
    if (!OS.good()) {
      std::fprintf(stderr, "error: failed writing '%s'\n", OutFile.c_str());
      return ExitError;
    }
  }

  return lintExitCode(Degraded,
                      Report.countAtLeast(clients::Severity::Warning) > 0);
}
