# Empty dependencies file for ctp-analyze.
# This may be replaced when dependencies are built.
