file(REMOVE_RECURSE
  "CMakeFiles/ctp-analyze.dir/ctp-analyze.cpp.o"
  "CMakeFiles/ctp-analyze.dir/ctp-analyze.cpp.o.d"
  "ctp-analyze"
  "ctp-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
