file(REMOVE_RECURSE
  "CMakeFiles/ctp-genfacts.dir/ctp-genfacts.cpp.o"
  "CMakeFiles/ctp-genfacts.dir/ctp-genfacts.cpp.o.d"
  "ctp-genfacts"
  "ctp-genfacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp-genfacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
