
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ctp-genfacts.cpp" "tools/CMakeFiles/ctp-genfacts.dir/ctp-genfacts.cpp.o" "gcc" "tools/CMakeFiles/ctp-genfacts.dir/ctp-genfacts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ctp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/facts/CMakeFiles/ctp_facts.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ctp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
