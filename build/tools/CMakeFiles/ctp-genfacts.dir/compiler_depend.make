# Empty compiler generated dependencies file for ctp-genfacts.
# This may be replaced when dependencies are built.
