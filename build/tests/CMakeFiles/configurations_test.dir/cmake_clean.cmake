file(REMOVE_RECURSE
  "CMakeFiles/configurations_test.dir/configurations_test.cpp.o"
  "CMakeFiles/configurations_test.dir/configurations_test.cpp.o.d"
  "configurations_test"
  "configurations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configurations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
