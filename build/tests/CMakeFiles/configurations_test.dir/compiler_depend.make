# Empty compiler generated dependencies file for configurations_test.
# This may be replaced when dependencies are built.
