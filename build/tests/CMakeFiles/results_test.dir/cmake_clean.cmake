file(REMOVE_RECURSE
  "CMakeFiles/results_test.dir/results_test.cpp.o"
  "CMakeFiles/results_test.dir/results_test.cpp.o.d"
  "results_test"
  "results_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/results_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
