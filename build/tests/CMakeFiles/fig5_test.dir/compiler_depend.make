# Empty compiler generated dependencies file for fig5_test.
# This may be replaced when dependencies are built.
