file(REMOVE_RECURSE
  "CMakeFiles/fig5_test.dir/fig5_test.cpp.o"
  "CMakeFiles/fig5_test.dir/fig5_test.cpp.o.d"
  "fig5_test"
  "fig5_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
