file(REMOVE_RECURSE
  "CMakeFiles/semantics_property_test.dir/semantics_property_test.cpp.o"
  "CMakeFiles/semantics_property_test.dir/semantics_property_test.cpp.o.d"
  "semantics_property_test"
  "semantics_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
