# Empty dependencies file for tsvio_test.
# This may be replaced when dependencies are built.
