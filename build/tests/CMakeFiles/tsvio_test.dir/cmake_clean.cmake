file(REMOVE_RECURSE
  "CMakeFiles/tsvio_test.dir/tsvio_test.cpp.o"
  "CMakeFiles/tsvio_test.dir/tsvio_test.cpp.o.d"
  "tsvio_test"
  "tsvio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsvio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
