file(REMOVE_RECURSE
  "CMakeFiles/context_string_test.dir/context_string_test.cpp.o"
  "CMakeFiles/context_string_test.dir/context_string_test.cpp.o.d"
  "context_string_test"
  "context_string_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
