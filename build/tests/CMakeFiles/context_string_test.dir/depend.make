# Empty dependencies file for context_string_test.
# This may be replaced when dependencies are built.
