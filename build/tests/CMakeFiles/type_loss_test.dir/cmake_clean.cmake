file(REMOVE_RECURSE
  "CMakeFiles/type_loss_test.dir/type_loss_test.cpp.o"
  "CMakeFiles/type_loss_test.dir/type_loss_test.cpp.o.d"
  "type_loss_test"
  "type_loss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
