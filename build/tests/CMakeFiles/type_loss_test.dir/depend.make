# Empty dependencies file for type_loss_test.
# This may be replaced when dependencies are built.
