# Empty compiler generated dependencies file for fig7_test.
# This may be replaced when dependencies are built.
