file(REMOVE_RECURSE
  "CMakeFiles/datalog_frontend_test.dir/datalog_frontend_test.cpp.o"
  "CMakeFiles/datalog_frontend_test.dir/datalog_frontend_test.cpp.o.d"
  "datalog_frontend_test"
  "datalog_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
