file(REMOVE_RECURSE
  "CMakeFiles/cast_test.dir/cast_test.cpp.o"
  "CMakeFiles/cast_test.dir/cast_test.cpp.o.d"
  "cast_test"
  "cast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
