# Empty dependencies file for cast_test.
# This may be replaced when dependencies are built.
