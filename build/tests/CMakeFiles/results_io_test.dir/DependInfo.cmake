
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/results_io_test.cpp" "tests/CMakeFiles/results_io_test.dir/results_io_test.cpp.o" "gcc" "tests/CMakeFiles/results_io_test.dir/results_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ctp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cfl/CMakeFiles/ctp_cfl.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ctp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/clients/CMakeFiles/ctp_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/ctp_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/facts/CMakeFiles/ctp_facts.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ctp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ctx/CMakeFiles/ctp_ctx.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
