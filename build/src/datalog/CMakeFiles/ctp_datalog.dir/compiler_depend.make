# Empty compiler generated dependencies file for ctp_datalog.
# This may be replaced when dependencies are built.
