file(REMOVE_RECURSE
  "CMakeFiles/ctp_datalog.dir/Engine.cpp.o"
  "CMakeFiles/ctp_datalog.dir/Engine.cpp.o.d"
  "CMakeFiles/ctp_datalog.dir/Relation.cpp.o"
  "CMakeFiles/ctp_datalog.dir/Relation.cpp.o.d"
  "libctp_datalog.a"
  "libctp_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
