file(REMOVE_RECURSE
  "libctp_datalog.a"
)
