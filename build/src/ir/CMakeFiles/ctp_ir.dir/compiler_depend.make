# Empty compiler generated dependencies file for ctp_ir.
# This may be replaced when dependencies are built.
