# Empty dependencies file for ctp_ir.
# This may be replaced when dependencies are built.
