file(REMOVE_RECURSE
  "libctp_ir.a"
)
