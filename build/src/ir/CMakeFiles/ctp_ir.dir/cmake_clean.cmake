file(REMOVE_RECURSE
  "CMakeFiles/ctp_ir.dir/Builder.cpp.o"
  "CMakeFiles/ctp_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/ctp_ir.dir/Print.cpp.o"
  "CMakeFiles/ctp_ir.dir/Print.cpp.o.d"
  "CMakeFiles/ctp_ir.dir/Program.cpp.o"
  "CMakeFiles/ctp_ir.dir/Program.cpp.o.d"
  "CMakeFiles/ctp_ir.dir/Validate.cpp.o"
  "CMakeFiles/ctp_ir.dir/Validate.cpp.o.d"
  "libctp_ir.a"
  "libctp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
