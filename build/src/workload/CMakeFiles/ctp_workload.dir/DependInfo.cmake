
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/Generator.cpp" "src/workload/CMakeFiles/ctp_workload.dir/Generator.cpp.o" "gcc" "src/workload/CMakeFiles/ctp_workload.dir/Generator.cpp.o.d"
  "/root/repo/src/workload/PaperPrograms.cpp" "src/workload/CMakeFiles/ctp_workload.dir/PaperPrograms.cpp.o" "gcc" "src/workload/CMakeFiles/ctp_workload.dir/PaperPrograms.cpp.o.d"
  "/root/repo/src/workload/Presets.cpp" "src/workload/CMakeFiles/ctp_workload.dir/Presets.cpp.o" "gcc" "src/workload/CMakeFiles/ctp_workload.dir/Presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ctp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/facts/CMakeFiles/ctp_facts.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
