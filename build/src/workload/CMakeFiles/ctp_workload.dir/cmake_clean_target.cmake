file(REMOVE_RECURSE
  "libctp_workload.a"
)
