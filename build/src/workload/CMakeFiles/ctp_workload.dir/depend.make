# Empty dependencies file for ctp_workload.
# This may be replaced when dependencies are built.
