file(REMOVE_RECURSE
  "CMakeFiles/ctp_workload.dir/Generator.cpp.o"
  "CMakeFiles/ctp_workload.dir/Generator.cpp.o.d"
  "CMakeFiles/ctp_workload.dir/PaperPrograms.cpp.o"
  "CMakeFiles/ctp_workload.dir/PaperPrograms.cpp.o.d"
  "CMakeFiles/ctp_workload.dir/Presets.cpp.o"
  "CMakeFiles/ctp_workload.dir/Presets.cpp.o.d"
  "libctp_workload.a"
  "libctp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
