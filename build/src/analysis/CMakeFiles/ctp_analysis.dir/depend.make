# Empty dependencies file for ctp_analysis.
# This may be replaced when dependencies are built.
