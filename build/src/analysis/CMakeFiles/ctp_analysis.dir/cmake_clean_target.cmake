file(REMOVE_RECURSE
  "libctp_analysis.a"
)
