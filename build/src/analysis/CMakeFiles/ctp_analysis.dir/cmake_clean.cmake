file(REMOVE_RECURSE
  "CMakeFiles/ctp_analysis.dir/Configurations.cpp.o"
  "CMakeFiles/ctp_analysis.dir/Configurations.cpp.o.d"
  "CMakeFiles/ctp_analysis.dir/DatalogFrontend.cpp.o"
  "CMakeFiles/ctp_analysis.dir/DatalogFrontend.cpp.o.d"
  "CMakeFiles/ctp_analysis.dir/Results.cpp.o"
  "CMakeFiles/ctp_analysis.dir/Results.cpp.o.d"
  "CMakeFiles/ctp_analysis.dir/ResultsIO.cpp.o"
  "CMakeFiles/ctp_analysis.dir/ResultsIO.cpp.o.d"
  "CMakeFiles/ctp_analysis.dir/Solver.cpp.o"
  "CMakeFiles/ctp_analysis.dir/Solver.cpp.o.d"
  "libctp_analysis.a"
  "libctp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
