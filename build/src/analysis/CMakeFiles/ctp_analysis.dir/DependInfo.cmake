
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Configurations.cpp" "src/analysis/CMakeFiles/ctp_analysis.dir/Configurations.cpp.o" "gcc" "src/analysis/CMakeFiles/ctp_analysis.dir/Configurations.cpp.o.d"
  "/root/repo/src/analysis/DatalogFrontend.cpp" "src/analysis/CMakeFiles/ctp_analysis.dir/DatalogFrontend.cpp.o" "gcc" "src/analysis/CMakeFiles/ctp_analysis.dir/DatalogFrontend.cpp.o.d"
  "/root/repo/src/analysis/Results.cpp" "src/analysis/CMakeFiles/ctp_analysis.dir/Results.cpp.o" "gcc" "src/analysis/CMakeFiles/ctp_analysis.dir/Results.cpp.o.d"
  "/root/repo/src/analysis/ResultsIO.cpp" "src/analysis/CMakeFiles/ctp_analysis.dir/ResultsIO.cpp.o" "gcc" "src/analysis/CMakeFiles/ctp_analysis.dir/ResultsIO.cpp.o.d"
  "/root/repo/src/analysis/Solver.cpp" "src/analysis/CMakeFiles/ctp_analysis.dir/Solver.cpp.o" "gcc" "src/analysis/CMakeFiles/ctp_analysis.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctx/CMakeFiles/ctp_ctx.dir/DependInfo.cmake"
  "/root/repo/build/src/facts/CMakeFiles/ctp_facts.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/ctp_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ctp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
