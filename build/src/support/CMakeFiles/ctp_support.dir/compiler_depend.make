# Empty compiler generated dependencies file for ctp_support.
# This may be replaced when dependencies are built.
