file(REMOVE_RECURSE
  "libctp_support.a"
)
