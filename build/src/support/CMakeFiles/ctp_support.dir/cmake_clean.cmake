file(REMOVE_RECURSE
  "CMakeFiles/ctp_support.dir/Tsv.cpp.o"
  "CMakeFiles/ctp_support.dir/Tsv.cpp.o.d"
  "libctp_support.a"
  "libctp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
