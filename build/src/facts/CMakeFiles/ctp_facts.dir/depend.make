# Empty dependencies file for ctp_facts.
# This may be replaced when dependencies are built.
