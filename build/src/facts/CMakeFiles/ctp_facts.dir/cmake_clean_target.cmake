file(REMOVE_RECURSE
  "libctp_facts.a"
)
