
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/facts/Extract.cpp" "src/facts/CMakeFiles/ctp_facts.dir/Extract.cpp.o" "gcc" "src/facts/CMakeFiles/ctp_facts.dir/Extract.cpp.o.d"
  "/root/repo/src/facts/FactDB.cpp" "src/facts/CMakeFiles/ctp_facts.dir/FactDB.cpp.o" "gcc" "src/facts/CMakeFiles/ctp_facts.dir/FactDB.cpp.o.d"
  "/root/repo/src/facts/TsvIO.cpp" "src/facts/CMakeFiles/ctp_facts.dir/TsvIO.cpp.o" "gcc" "src/facts/CMakeFiles/ctp_facts.dir/TsvIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ctp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
