file(REMOVE_RECURSE
  "CMakeFiles/ctp_facts.dir/Extract.cpp.o"
  "CMakeFiles/ctp_facts.dir/Extract.cpp.o.d"
  "CMakeFiles/ctp_facts.dir/FactDB.cpp.o"
  "CMakeFiles/ctp_facts.dir/FactDB.cpp.o.d"
  "CMakeFiles/ctp_facts.dir/TsvIO.cpp.o"
  "CMakeFiles/ctp_facts.dir/TsvIO.cpp.o.d"
  "libctp_facts.a"
  "libctp_facts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_facts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
