file(REMOVE_RECURSE
  "libctp_ctx.a"
)
