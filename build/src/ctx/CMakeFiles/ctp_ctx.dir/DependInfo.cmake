
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctx/Config.cpp" "src/ctx/CMakeFiles/ctp_ctx.dir/Config.cpp.o" "gcc" "src/ctx/CMakeFiles/ctp_ctx.dir/Config.cpp.o.d"
  "/root/repo/src/ctx/ContextString.cpp" "src/ctx/CMakeFiles/ctp_ctx.dir/ContextString.cpp.o" "gcc" "src/ctx/CMakeFiles/ctp_ctx.dir/ContextString.cpp.o.d"
  "/root/repo/src/ctx/Ctxt.cpp" "src/ctx/CMakeFiles/ctp_ctx.dir/Ctxt.cpp.o" "gcc" "src/ctx/CMakeFiles/ctp_ctx.dir/Ctxt.cpp.o.d"
  "/root/repo/src/ctx/Domain.cpp" "src/ctx/CMakeFiles/ctp_ctx.dir/Domain.cpp.o" "gcc" "src/ctx/CMakeFiles/ctp_ctx.dir/Domain.cpp.o.d"
  "/root/repo/src/ctx/Semantics.cpp" "src/ctx/CMakeFiles/ctp_ctx.dir/Semantics.cpp.o" "gcc" "src/ctx/CMakeFiles/ctp_ctx.dir/Semantics.cpp.o.d"
  "/root/repo/src/ctx/TransformerString.cpp" "src/ctx/CMakeFiles/ctp_ctx.dir/TransformerString.cpp.o" "gcc" "src/ctx/CMakeFiles/ctp_ctx.dir/TransformerString.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ctp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
