# Empty compiler generated dependencies file for ctp_ctx.
# This may be replaced when dependencies are built.
