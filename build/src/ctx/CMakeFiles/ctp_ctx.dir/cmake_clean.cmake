file(REMOVE_RECURSE
  "CMakeFiles/ctp_ctx.dir/Config.cpp.o"
  "CMakeFiles/ctp_ctx.dir/Config.cpp.o.d"
  "CMakeFiles/ctp_ctx.dir/ContextString.cpp.o"
  "CMakeFiles/ctp_ctx.dir/ContextString.cpp.o.d"
  "CMakeFiles/ctp_ctx.dir/Ctxt.cpp.o"
  "CMakeFiles/ctp_ctx.dir/Ctxt.cpp.o.d"
  "CMakeFiles/ctp_ctx.dir/Domain.cpp.o"
  "CMakeFiles/ctp_ctx.dir/Domain.cpp.o.d"
  "CMakeFiles/ctp_ctx.dir/Semantics.cpp.o"
  "CMakeFiles/ctp_ctx.dir/Semantics.cpp.o.d"
  "CMakeFiles/ctp_ctx.dir/TransformerString.cpp.o"
  "CMakeFiles/ctp_ctx.dir/TransformerString.cpp.o.d"
  "libctp_ctx.a"
  "libctp_ctx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_ctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
