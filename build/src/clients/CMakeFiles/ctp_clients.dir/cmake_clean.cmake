file(REMOVE_RECURSE
  "CMakeFiles/ctp_clients.dir/Alias.cpp.o"
  "CMakeFiles/ctp_clients.dir/Alias.cpp.o.d"
  "CMakeFiles/ctp_clients.dir/Devirtualize.cpp.o"
  "CMakeFiles/ctp_clients.dir/Devirtualize.cpp.o.d"
  "CMakeFiles/ctp_clients.dir/Reachability.cpp.o"
  "CMakeFiles/ctp_clients.dir/Reachability.cpp.o.d"
  "libctp_clients.a"
  "libctp_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
