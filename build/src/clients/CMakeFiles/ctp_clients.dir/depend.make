# Empty dependencies file for ctp_clients.
# This may be replaced when dependencies are built.
