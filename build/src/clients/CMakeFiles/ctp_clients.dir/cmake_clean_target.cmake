file(REMOVE_RECURSE
  "libctp_clients.a"
)
