file(REMOVE_RECURSE
  "CMakeFiles/ctp_cfl.dir/Demand.cpp.o"
  "CMakeFiles/ctp_cfl.dir/Demand.cpp.o.d"
  "CMakeFiles/ctp_cfl.dir/Oracle.cpp.o"
  "CMakeFiles/ctp_cfl.dir/Oracle.cpp.o.d"
  "CMakeFiles/ctp_cfl.dir/Pag.cpp.o"
  "CMakeFiles/ctp_cfl.dir/Pag.cpp.o.d"
  "libctp_cfl.a"
  "libctp_cfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_cfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
