
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfl/Demand.cpp" "src/cfl/CMakeFiles/ctp_cfl.dir/Demand.cpp.o" "gcc" "src/cfl/CMakeFiles/ctp_cfl.dir/Demand.cpp.o.d"
  "/root/repo/src/cfl/Oracle.cpp" "src/cfl/CMakeFiles/ctp_cfl.dir/Oracle.cpp.o" "gcc" "src/cfl/CMakeFiles/ctp_cfl.dir/Oracle.cpp.o.d"
  "/root/repo/src/cfl/Pag.cpp" "src/cfl/CMakeFiles/ctp_cfl.dir/Pag.cpp.o" "gcc" "src/cfl/CMakeFiles/ctp_cfl.dir/Pag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/facts/CMakeFiles/ctp_facts.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ctp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
