file(REMOVE_RECURSE
  "libctp_cfl.a"
)
