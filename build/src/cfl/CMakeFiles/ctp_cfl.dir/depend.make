# Empty dependencies file for ctp_cfl.
# This may be replaced when dependencies are built.
