file(REMOVE_RECURSE
  "CMakeFiles/devirt_inspector.dir/devirt_inspector.cpp.o"
  "CMakeFiles/devirt_inspector.dir/devirt_inspector.cpp.o.d"
  "devirt_inspector"
  "devirt_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devirt_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
