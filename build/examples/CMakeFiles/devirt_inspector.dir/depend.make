# Empty dependencies file for devirt_inspector.
# This may be replaced when dependencies are built.
