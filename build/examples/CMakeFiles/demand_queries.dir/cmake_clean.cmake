file(REMOVE_RECURSE
  "CMakeFiles/demand_queries.dir/demand_queries.cpp.o"
  "CMakeFiles/demand_queries.dir/demand_queries.cpp.o.d"
  "demand_queries"
  "demand_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
