# Empty compiler generated dependencies file for demand_queries.
# This may be replaced when dependencies are built.
