file(REMOVE_RECURSE
  "CMakeFiles/facts_pipeline.dir/facts_pipeline.cpp.o"
  "CMakeFiles/facts_pipeline.dir/facts_pipeline.cpp.o.d"
  "facts_pipeline"
  "facts_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facts_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
