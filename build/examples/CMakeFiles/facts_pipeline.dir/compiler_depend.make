# Empty compiler generated dependencies file for facts_pipeline.
# This may be replaced when dependencies are built.
