file(REMOVE_RECURSE
  "../bench/bench_subsumption_collapse"
  "../bench/bench_subsumption_collapse.pdb"
  "CMakeFiles/bench_subsumption_collapse.dir/bench_subsumption_collapse.cpp.o"
  "CMakeFiles/bench_subsumption_collapse.dir/bench_subsumption_collapse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subsumption_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
