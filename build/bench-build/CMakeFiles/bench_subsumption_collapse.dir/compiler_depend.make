# Empty compiler generated dependencies file for bench_subsumption_collapse.
# This may be replaced when dependencies are built.
