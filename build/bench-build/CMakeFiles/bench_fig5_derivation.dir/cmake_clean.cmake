file(REMOVE_RECURSE
  "../bench/bench_fig5_derivation"
  "../bench/bench_fig5_derivation.pdb"
  "CMakeFiles/bench_fig5_derivation.dir/bench_fig5_derivation.cpp.o"
  "CMakeFiles/bench_fig5_derivation.dir/bench_fig5_derivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
