# Empty dependencies file for bench_fig7_subsumption.
# This may be replaced when dependencies are built.
