file(REMOVE_RECURSE
  "../bench/bench_fig7_subsumption"
  "../bench/bench_fig7_subsumption.pdb"
  "CMakeFiles/bench_fig7_subsumption.dir/bench_fig7_subsumption.cpp.o"
  "CMakeFiles/bench_fig7_subsumption.dir/bench_fig7_subsumption.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_subsumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
