# Empty compiler generated dependencies file for bench_demand_queries.
# This may be replaced when dependencies are built.
