file(REMOVE_RECURSE
  "../bench/bench_demand_queries"
  "../bench/bench_demand_queries.pdb"
  "CMakeFiles/bench_demand_queries.dir/bench_demand_queries.cpp.o"
  "CMakeFiles/bench_demand_queries.dir/bench_demand_queries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_demand_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
