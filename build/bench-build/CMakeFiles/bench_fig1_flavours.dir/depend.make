# Empty dependencies file for bench_fig1_flavours.
# This may be replaced when dependencies are built.
