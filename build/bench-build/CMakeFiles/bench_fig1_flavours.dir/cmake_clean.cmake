file(REMOVE_RECURSE
  "../bench/bench_fig1_flavours"
  "../bench/bench_fig1_flavours.pdb"
  "CMakeFiles/bench_fig1_flavours.dir/bench_fig1_flavours.cpp.o"
  "CMakeFiles/bench_fig1_flavours.dir/bench_fig1_flavours.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_flavours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
