# Empty dependencies file for bench_client_precision.
# This may be replaced when dependencies are built.
