file(REMOVE_RECURSE
  "../bench/bench_client_precision"
  "../bench/bench_client_precision.pdb"
  "CMakeFiles/bench_client_precision.dir/bench_client_precision.cpp.o"
  "CMakeFiles/bench_client_precision.dir/bench_client_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
