file(REMOVE_RECURSE
  "../bench/bench_fig6_main_table"
  "../bench/bench_fig6_main_table.pdb"
  "CMakeFiles/bench_fig6_main_table.dir/bench_fig6_main_table.cpp.o"
  "CMakeFiles/bench_fig6_main_table.dir/bench_fig6_main_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_main_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
