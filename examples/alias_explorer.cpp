//===- examples/alias_explorer.cpp - May-alias precision explorer ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Rebuilds the Figure-1 program of the paper and answers the alias
// questions Section 2 walks through (are a.f and b.f aliased? does z point
// to h1?), showing how each flavour and level of context sensitivity
// changes the answers, with identical results from both abstractions.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "clients/Alias.h"
#include "facts/Extract.h"
#include "ir/Ir.h"
#include "workload/PaperPrograms.h"

#include <cstdio>

using namespace ctp;

int main() {
  workload::Figure1Program F = workload::figure1();
  std::printf("Figure 1 program:\n%s\n", ir::printProgram(F.P).c_str());
  facts::FactDB DB = facts::extract(F.P);

  std::printf("%-16s %-22s %-22s %-10s %-8s\n", "config", "x1 pts",
              "x2 pts", "a~b alias", "z->h1");
  auto Row = [&](const ctx::Config &Cfg) {
    analysis::Results R = analysis::solve(DB, Cfg);
    clients::AliasOracle A(R);
    auto Fmt = [&](ir::VarId V) {
      std::string S = "{";
      bool First = true;
      for (std::uint32_t H : R.pointsTo(V)) {
        S += (First ? "" : ",") + DB.HeapNames[H];
        First = false;
      }
      return S + "}";
    };
    bool ZH1 = false;
    for (std::uint32_t H : R.pointsTo(F.Z))
      ZH1 |= H == F.H1;
    std::printf("%-16s %-22s %-22s %-10s %-8s\n", Cfg.name().c_str(),
                Fmt(F.X1).c_str(), Fmt(F.X2).c_str(),
                A.mayAlias(F.A, F.B) ? "may" : "no", ZH1 ? "yes" : "no");
  };

  for (ctx::Abstraction A : {ctx::Abstraction::ContextString,
                             ctx::Abstraction::TransformerString}) {
    Row(ctx::insensitive(A));
    Row(ctx::oneCall(A));
    Row(ctx::oneCallH(A));
    Row(ctx::oneObject(A));
    Row(ctx::twoObjectH(A));
    Row(ctx::twoTypeH(A));
    std::printf("\n");
  }
  std::printf("note: \"a~b alias\" is the CI query on abstract heap m1 — "
              "with heap contexts the underlying objects are separated,\n"
              "which is visible in the z->h1 column instead.\n");
  return 0;
}
