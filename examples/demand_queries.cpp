//===- examples/demand_queries.cpp - Demand-driven query API tour ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Demonstrates the demand-driven query engine (the Section-10 future-work
// direction): per-variable may-point-to queries with a work budget,
// compared against one exhaustive context-insensitive solve. Optionally
// takes a preset name.
//
//===----------------------------------------------------------------------===//

#include "cfl/Demand.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "support/Stats.h"
#include "workload/Presets.h"

#include <cstdio>
#include <string>

using namespace ctp;

int main(int argc, char **argv) {
  std::string Preset = argc > 1 ? argv[1] : "antlr";
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  std::printf("workload: %s (%zu variables, %zu heap sites)\n\n",
              Preset.c_str(), DB.numVars(), DB.numHeaps());

  // The exhaustive baseline: saturate everything, then look up.
  Stopwatch ExhTimer;
  cfl::OracleResult Oracle = cfl::solveInsensitive(DB);
  std::printf("exhaustive CI analysis: %zu pts facts in %.2f ms\n\n",
              Oracle.Pts.size(), ExhTimer.seconds() * 1e3);

  // Demand queries: ask only about the variables we care about — here,
  // the result variable of every call whose name starts with "runtask".
  cfl::DemandSolver Demand(DB);
  std::printf("%-28s %8s %10s %8s\n", "query variable", "pts", "visited",
              "steps");
  unsigned Shown = 0;
  for (const auto &F : DB.AssignReturns) {
    if (DB.InvokeNames[F.Invoke].rfind("runtask", 0) != 0)
      continue;
    cfl::DemandAnswer A = Demand.query(F.To);
    std::printf("%-28s %8zu %10zu %8zu%s\n", DB.VarNames[F.To].c_str(),
                A.Heaps.size(), A.RelevantVars, A.Steps,
                A.BudgetExceeded ? "  (budget!)" : "");
    if (++Shown == 8)
      break;
  }

  // Budgets make queries safely abortable: an exhausted query returns
  // the trivially sound "all heap sites" answer.
  if (!DB.AssignReturns.empty()) {
    std::uint32_t V = DB.AssignReturns.front().To;
    cfl::DemandAnswer Tight = Demand.query(V, /*Budget=*/5);
    std::printf("\nwith budget 5, query on %s: %zu heaps, "
                "budget exceeded: %s\n",
                DB.VarNames[V].c_str(), Tight.Heaps.size(),
                Tight.BudgetExceeded ? "yes (sound fallback)" : "no");
  }
  return 0;
}
