//===- examples/facts_pipeline.cpp - File-based analysis pipeline ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Demonstrates the paper's actual deployment shape: a fact generator
// writes Doop-style .facts files to a directory, and the analysis runs
// from those files ("We use the same fact generator as Doop, which
// transforms Java bytecode to a set of relations"). Here the generator
// side is the synthetic workload; the consumer side never touches the IR.
//
// Usage: facts_pipeline [preset] [output-dir]
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "workload/Presets.h"

#include <cstdio>
#include <filesystem>
#include <string>

using namespace ctp;

int main(int argc, char **argv) {
  std::string Preset = argc > 1 ? argv[1] : "pmd";
  std::string Dir =
      argc > 2 ? argv[2]
               : (std::filesystem::temp_directory_path() / "ctp_facts")
                     .string();

  // --- Producer: extract facts and write them to disk. ---
  {
    facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
    std::filesystem::create_directories(Dir);
    std::string Err = facts::writeFactsDir(DB, Dir);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("wrote %zu input facts for '%s' to %s\n",
                DB.numInputFacts(), Preset.c_str(), Dir.c_str());
  }

  // --- Consumer: load the directory and analyze. ---
  facts::FactDB DB;
  std::string Err = facts::readFactsDir(Dir, DB);
  if (!Err.empty()) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("loaded %zu input facts back from disk\n\n",
              DB.numInputFacts());

  std::printf("%-16s %12s %12s %12s %10s\n", "config", "|pts|", "|hpts|",
              "|call|", "time");
  for (ctx::Abstraction A : {ctx::Abstraction::ContextString,
                             ctx::Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::twoObjectH(A));
    std::printf("%-16s %12zu %12zu %12zu %8.1fms\n",
                R.Config.name().c_str(), R.Stat.NumPts, R.Stat.NumHpts,
                R.Stat.NumCall, R.Stat.Seconds * 1e3);
  }
  return 0;
}
