//===- examples/devirt_inspector.cpp - Devirtualization client ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Runs the pointer analysis on a DaCapo-shaped synthetic workload and
// reports, per context-sensitivity configuration, how many virtual call
// sites become provably monomorphic — the classic consumer of a precise
// context-sensitive call graph. Optionally takes a preset name
// (antlr|bloat|chart|eclipse|luindex|pmd|xalan).
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "clients/Devirtualize.h"
#include "clients/Reachability.h"
#include "facts/Extract.h"
#include "workload/Presets.h"

#include <cstdio>
#include <string>

using namespace ctp;

int main(int argc, char **argv) {
  std::string Preset = argc > 1 ? argv[1] : "luindex";
  std::printf("workload: %s\n", Preset.c_str());
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  std::printf("  %zu methods, %zu virtual sites, %zu input facts\n\n",
              DB.numMethods(), DB.VirtualInvokes.size(),
              DB.numInputFacts());

  std::printf("%-16s %10s %10s %10s %10s\n", "config", "reached",
              "monomorph", "polymorph", "dead-methods");
  ctx::Abstraction A = ctx::Abstraction::TransformerString;
  for (const ctx::Config &Cfg :
       {ctx::insensitive(A), ctx::oneCall(A), ctx::oneObject(A),
        ctx::twoObjectH(A)}) {
    analysis::Results R = analysis::solve(DB, Cfg);
    clients::DevirtSummary S = clients::devirtualize(DB, R);
    clients::ReachabilitySummary Reach = clients::reachableMethods(DB, R);
    std::printf("%-16s %10zu %10zu %10zu %10zu\n", Cfg.name().c_str(),
                S.ReachedSites, S.MonomorphicSites, S.PolymorphicSites,
                Reach.DeadMethods.size());
  }

  std::printf("\nSample polymorphic sites under 2-object+H:\n");
  analysis::Results R = analysis::solve(DB, ctx::twoObjectH(A));
  clients::DevirtSummary S = clients::devirtualize(DB, R);
  int Shown = 0;
  for (const auto &Site : S.PerSite) {
    if (Site.Targets.size() < 2)
      continue;
    std::printf("  %s ->", DB.InvokeNames[Site.Invoke].c_str());
    for (std::uint32_t T : Site.Targets)
      std::printf(" %s", DB.MethodNames[T].c_str());
    std::printf("\n");
    if (++Shown == 5)
      break;
  }
  if (Shown == 0)
    std::printf("  (none — every reached site is monomorphic)\n");
  return 0;
}
