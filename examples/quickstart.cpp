//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Builds a small Java-like program through the ir::Builder API, extracts
// Figure-3 input facts, runs the context-sensitive pointer analysis under
// two configurations and both context-transformation abstractions, and
// prints points-to sets plus the relation-size comparison that is the
// heart of the paper.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "ir/Builder.h"

#include <cstdio>

using namespace ctp;
using namespace ctp::ir;

int main() {
  // --- 1. Build the program (Figure 1's essence, condensed). ---
  //
  //   class Box { Object get(Object p) { return p; } }
  //   main:
  //     box1 = new Box();  box2 = new Box();
  //     a = new Object() /*ha*/;  b = new Object() /*hb*/;
  //     ra = box1.get(a);  rb = box2.get(b);
  Builder B;
  TypeId Object = B.addClass("Object");
  TypeId Box = B.addClass("Box", Object);
  MethodId Get = B.addMethod(Box, "get", 1);
  B.addReturn(Get, B.formal(Get, 0));
  SigId GetSig = B.signature("get", 1);

  MethodId Main = B.addStaticMethod(Object, "main", 0);
  B.setMain(Main);
  VarId Box1 = B.addLocal(Main, "box1");
  B.addNew(Main, Box1, Box, "hbox1");
  VarId Box2 = B.addLocal(Main, "box2");
  B.addNew(Main, Box2, Box, "hbox2");
  VarId A = B.addLocal(Main, "a");
  B.addNew(Main, A, Object, "ha");
  VarId Bv = B.addLocal(Main, "b");
  B.addNew(Main, Bv, Object, "hb");
  VarId Ra = B.addLocal(Main, "ra");
  B.addVirtualCall(Main, Box1, GetSig, {A}, Ra, "call_a");
  VarId Rb = B.addLocal(Main, "rb");
  B.addVirtualCall(Main, Box2, GetSig, {Bv}, Rb, "call_b");
  Program P = B.take();

  // --- 2. Extract the Figure-3 input predicates. ---
  facts::FactDB DB = facts::extract(P);
  std::printf("program: %zu methods, %zu vars, %zu heap sites, %zu input "
              "facts\n\n",
              DB.numMethods(), DB.numVars(), DB.numHeaps(),
              DB.numInputFacts());

  // --- 3. Run the analysis under several configurations. ---
  auto Show = [&](const ctx::Config &Cfg) {
    analysis::Results R = analysis::solve(DB, Cfg);
    auto PrintPts = [&](const char *Name, VarId V) {
      std::printf("  %-4s -> {", Name);
      bool First = true;
      for (std::uint32_t H : R.pointsTo(V)) {
        std::printf("%s%s", First ? "" : ", ", DB.HeapNames[H].c_str());
        First = false;
      }
      std::printf("}\n");
    };
    std::printf("%s: |pts|=%zu |hpts|=%zu |call|=%zu (%.1f ms)\n",
                Cfg.name().c_str(), R.Stat.NumPts, R.Stat.NumHpts,
                R.Stat.NumCall, R.Stat.Seconds * 1e3);
    PrintPts("ra", Ra);
    PrintPts("rb", Rb);
    std::printf("\n");
  };

  // Context-insensitive: ra and rb are conflated.
  Show(ctx::insensitive(ctx::Abstraction::ContextString));
  // 1-object-sensitive: the two Box receivers separate the calls; compare
  // the traditional context strings against the paper's transformer
  // strings — same precision, fewer facts.
  Show(ctx::oneObject(ctx::Abstraction::ContextString));
  Show(ctx::oneObject(ctx::Abstraction::TransformerString));
  return 0;
}
