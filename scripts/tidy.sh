#!/usr/bin/env bash
#===- scripts/tidy.sh - clang-tidy over the project sources --------------===#
#
# Part of the ctp project: a reproduction of "Context Transformations for
# Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
#
# Runs clang-tidy (configuration: the repo-root .clang-tidy) over every
# source file under src/ and tools/, using the compile_commands.json of an
# existing build directory. Locates clang-tidy across common version
# suffixes; if none is installed, prints how to get one and exits 0 so
# optional-tidy CI lanes don't fail on environment, only on findings.
#
# Usage: scripts/tidy.sh [BUILD_DIR]      (default: build)
#
# Exit codes: 0 clean or clang-tidy unavailable, 1 findings or bad setup.
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY=""
for CAND in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15; do
  if command -v "$CAND" >/dev/null 2>&1; then
    TIDY="$CAND"
    break
  fi
done
if [[ -z "$TIDY" ]]; then
  echo "tidy.sh: clang-tidy not found on PATH (tried clang-tidy and" >&2
  echo "tidy.sh: versioned names 15-20); install LLVM's clang-tools to" >&2
  echo "tidy.sh: enable this check. Skipping." >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing; configure first:" >&2
  echo "tidy.sh:   cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

mapfile -t FILES < <(find src tools -name '*.cpp' | sort)
echo "tidy.sh: $TIDY over ${#FILES[@]} files ($BUILD_DIR)"
STATUS=0
for F in "${FILES[@]}"; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$F" || STATUS=1
done
exit "$STATUS"
