#!/usr/bin/env bash
#===- scripts/crashloop.sh - Kill/resume loop through ctp-analyze --------===#
#
# Part of the ctp project: a reproduction of "Context Transformations for
# Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
#
# Exercises crash-safe checkpoint/resume through the real binary: run the
# precise configuration under a derivation budget far below convergence,
# so every invocation "dies" (exit 3, degraded) after leaving a snapshot,
# then re-invoke with --resume until the fixpoint converges (exit 0). One
# middle iteration additionally arms a sticky snapshot-writer fault
# (CTP_SNAPSHOT_FAULT=bitflip), so its final snapshot is corrupt and the
# next invocation must detect that, warn, and cold-start — the loop still
# converges, just from further back.
#
# The converged result is compared against an uninterrupted run: the
# derived-relation sizes and cumulative derivation count must match
# exactly.
#
# Usage: scripts/crashloop.sh [--preset NAME] [--config NAME]
#                             [--budget N] [--max-iters N]
# Env:   CTP_ANALYZE  path to the ctp-analyze binary
#                     (default: build/tools/ctp-analyze next to this repo)
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=antlr
CONFIG=2-object+H
BUDGET=6000
MAX_ITERS=40
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset) PRESET="$2"; shift 2 ;;
    --config) CONFIG="$2"; shift 2 ;;
    --budget) BUDGET="$2"; shift 2 ;;
    --max-iters) MAX_ITERS="$2"; shift 2 ;;
    *)
      echo "usage: scripts/crashloop.sh [--preset NAME] [--config NAME]" \
           "[--budget N] [--max-iters N]" >&2
      exit 2
      ;;
  esac
done

ANALYZE="${CTP_ANALYZE:-build/tools/ctp-analyze}"
if [[ ! -x "$ANALYZE" ]]; then
  echo "error: ctp-analyze not found at '$ANALYZE' (build first or set" \
       "CTP_ANALYZE)" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ctp_crashloop.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
CKPT="$WORK/ckpt"
mkdir -p "$CKPT"

# Baseline: one uninterrupted converged run.
"$ANALYZE" --preset "$PRESET" --config "$CONFIG" > "$WORK/baseline.txt"
summary() { grep -E '^(termination|  (pts|hpts|hload|call|reach|gpts) )' "$1"; }

echo "== crash loop: $PRESET/$CONFIG, $BUDGET derivations per life =="
ITER=0
RESUME=()
SAW_CORRUPTION_RECOVERY=0
while true; do
  ITER=$((ITER + 1))
  if [[ "$ITER" -gt "$MAX_ITERS" ]]; then
    echo "FAIL: no convergence after $MAX_ITERS lives" >&2
    exit 1
  fi
  # Life 2 writes its snapshots through a sticky bit-flip fault: its last
  # checkpoint is corrupt, and life 3 must recover by cold-starting.
  FAULT=""
  if [[ "$ITER" -eq 2 ]]; then
    FAULT=bitflip
  fi
  set +e
  CTP_SNAPSHOT_FAULT="$FAULT" "$ANALYZE" --preset "$PRESET" \
    --config "$CONFIG" --max-derivations "$BUDGET" \
    --checkpoint-dir "$CKPT" "${RESUME[@]}" \
    > "$WORK/run$ITER.txt" 2> "$WORK/run$ITER.err"
  CODE=$?
  set -e
  RESUME=(--resume)
  case "$CODE" in
    0)
      echo "life $ITER: converged"
      break
      ;;
    3)
      if [[ -n "$FAULT" ]]; then
        echo "life $ITER: killed by budget, snapshot writes sabotaged"
      else
        echo "life $ITER: killed by budget (snapshot saved)"
      fi
      ;;
    *)
      echo "FAIL: life $ITER exited $CODE" >&2
      cat "$WORK/run$ITER.err" >&2
      exit 1
      ;;
  esac
  if grep -q "corrupt" "$WORK/run$ITER.err" 2>/dev/null; then
    SAW_CORRUPTION_RECOVERY=1
    echo "life $ITER: detected corrupt snapshot, cold-started"
  fi
done
if grep -q "corrupt" "$WORK/run$ITER.err" 2>/dev/null; then
  SAW_CORRUPTION_RECOVERY=1
fi

if [[ "$SAW_CORRUPTION_RECOVERY" -ne 1 ]]; then
  echo "FAIL: the sabotaged life never triggered corruption recovery" >&2
  exit 1
fi

if ! diff <(summary "$WORK/baseline.txt") <(summary "$WORK/run$ITER.txt") \
     > "$WORK/diff.txt"; then
  echo "FAIL: resumed result differs from uninterrupted run:" >&2
  cat "$WORK/diff.txt" >&2
  exit 1
fi
echo "== crash loop converged in $ITER lives, result identical =="
