#!/usr/bin/env bash
#===- scripts/crashloop.sh - Kill/resume loop through ctp-analyze --------===#
#
# Part of the ctp project: a reproduction of "Context Transformations for
# Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
#
# Exercises crash-safe checkpoint/resume through the real binary: run the
# precise configuration under a derivation budget far below convergence,
# so every invocation "dies" (exit 3, degraded) after leaving a snapshot,
# then re-invoke with --resume until the fixpoint converges (exit 0). One
# middle iteration additionally arms a sticky snapshot-writer fault
# (CTP_SNAPSHOT_FAULT=bitflip), so its final snapshot is corrupt and the
# next invocation must detect that, warn, and cold-start — the loop still
# converges, just from further back.
#
# The converged result is compared against an uninterrupted run: the
# derived-relation sizes and cumulative derivation count must match
# exactly.
#
# Usage: scripts/crashloop.sh [--preset NAME] [--config NAME]
#                             [--budget N] [--max-iters N]
#                             [--batch | --serve | --delta | --oom]
# Env:   CTP_ANALYZE  path to the ctp-analyze binary
#                     (default: build/tools/ctp-analyze next to this repo)
#        CTP_BATCH    path to ctp-batch (--batch mode only; default
#                     build/tools/ctp-batch)
#        CTP_SERVE    path to ctp-serve (--serve mode only; default
#                     build/tools/ctp-serve)
#        CTP_VERIFY   path to ctp-verify (--oom mode only; default
#                     build/tools/ctp-verify)
#
# --batch runs the supervised variant instead: a ctp-batch --chaos matrix
# (3 presets x 2 configs, seeded SIGKILL injection) must terminate with a
# complete report and exit 0; then the supervisor itself is SIGKILLed
# mid-run on a fresh work tree and re-invoked, and every job that
# finished in the first life must keep a byte-identical report row.
#
# --serve exercises the resident analysis service: start a supervised
# ctp-serve daemon, SIGKILL it mid-query-stream five times, and after
# each supervisor restart a fixed query batch must return byte-identical
# answers (restarted lives warm-start from the converged checkpoint).
# Then: a max_steps=1 query must come back answered-but-degraded, an
# admission burst past the queue cap must yield explicit `overloaded`
# replies while the heartbeat file keeps advancing (a retrying client
# must then win the shed queries back), and a `shutdown` request must
# stop the whole supervisor tree with exit 0.
#
# --delta exercises transactional incremental re-solve: a daemon over a
# generated facts directory takes a begin/delta/commit transaction while
# CTP_TXN_CRASH SIGKILLs it at each pipeline stage in turn (begin, op,
# solve, certify, promote, commit). After every crash a restarted daemon
# must replay the journal to a certified state: crashes before the
# durable commit record recover to the pre-transaction epoch with
# byte-identical answers; a crash after it recovers to the committed
# epoch. The committed state is compared (modulo the epoch column)
# against a fresh daemon cold-solving an equivalently hand-edited facts
# directory, which ctp-verify must also certify. A client abort must
# leave answers byte-identical too.
#
# --oom is the memory-governor drill. It probes a descending RLIMIT_AS
# ladder for a limit under which the *ungoverned* precise run dies on
# bad_alloc (the negative control — the pre-governor failure mode), then
# re-runs under the same limit with a cooperative --mem-budget-mb at
# ~85% of it plus --fallback: the governed run must degrade down the
# ladder to exit 3 instead of dying, its rung-0 attempt must name
# MemoryBudget, and the TSV results it writes must be byte-identical to
# an unconstrained cold solve of the configuration it landed on, which
# ctp-verify must also certify. Sanitizer builds must NOT run this mode
# (ASan reserves vast address space); they smoke the governor with
# CTP_MEM_FAULT simulation instead (scripts/check.sh does both).
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

PRESET=antlr
CONFIG=2-object+H
BUDGET=6000
MAX_ITERS=40
BATCH=0
SERVE=0
DELTA=0
OOM=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset) PRESET="$2"; shift 2 ;;
    --config) CONFIG="$2"; shift 2 ;;
    --budget) BUDGET="$2"; shift 2 ;;
    --max-iters) MAX_ITERS="$2"; shift 2 ;;
    --batch) BATCH=1; shift ;;
    --serve) SERVE=1; shift ;;
    --delta) DELTA=1; shift ;;
    --oom) OOM=1; shift ;;
    *)
      echo "usage: scripts/crashloop.sh [--preset NAME] [--config NAME]" \
           "[--budget N] [--max-iters N]" \
           "[--batch | --serve | --delta | --oom]" >&2
      exit 2
      ;;
  esac
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ctp_crashloop.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ "$SERVE" -eq 1 ]]; then
  SERVE_BIN="${CTP_SERVE:-build/tools/ctp-serve}"
  if [[ ! -x "$SERVE_BIN" ]]; then
    echo "error: ctp-serve not found at '$SERVE_BIN' (build first or set" \
         "CTP_SERVE)" >&2
    exit 1
  fi
  SRV="$WORK/serve"
  SOCK="$WORK/s.sock"

  "$SERVE_BIN" --supervise --workdir "$SRV" --socket "$SOCK" \
    --preset "$PRESET" --config "$CONFIG" --checkpoint-every 500 \
    --backoff-ms 50 --backoff-cap-ms 500 --stable-reset-ms 1000 \
    --workers 2 --queue-cap 64 > "$WORK/sup.log" 2>&1 &
  SUP=$!
  trap 'kill -9 "$SUP" 2>/dev/null || true; rm -rf "$WORK"' EXIT

  client() { "$SERVE_BIN" --client "$SOCK" --connect-timeout-ms 60000; }
  die() {
    echo "FAIL: $1" >&2
    shift
    for F in "$@"; do cat "$F" >&2 2>/dev/null || true; done
    exit 1
  }

  echo "== serve: $PRESET/$CONFIG, waiting for the first (cold) solve =="
  echo ping | client > /dev/null \
    || die "daemon never answered a ping" "$WORK/sup.log"

  # A fixed query batch built from daemon-advertised variable names: the
  # `vars` verb is deterministic in fact-base order, so the batch — and
  # therefore its answers — is identical across daemon lives.
  NAMES="$(echo "vars 12" | client | cut -f5)" \
    || die "name discovery failed" "$WORK/sup.log"
  read -r -a NAME_ARR <<< "$NAMES"
  [[ "${#NAME_ARR[@]}" -ge 4 ]] \
    || die "vars returned too few names: '$NAMES'"
  BATCH_FILE="$WORK/batch.txt"
  {
    for N in "${NAME_ARR[@]}"; do echo "pts $N"; done
    echo "alias ${NAME_ARR[0]} ${NAME_ARR[0]}"
    echo "alias ${NAME_ARR[0]} ${NAME_ARR[1]}"
    echo "alias ${NAME_ARR[2]} ${NAME_ARR[3]}"
  } > "$BATCH_FILE"
  client < "$BATCH_FILE" > "$WORK/base.txt" \
    || die "baseline batch failed" "$WORK/sup.log"

  KILLS=5
  for K in $(seq 1 "$KILLS"); do
    PID="$(cat "$SRV/serve.pid")"
    # Put a query stream in flight, then SIGKILL the daemon under it:
    # that client may lose its in-flight answers (the documented
    # contract), but the *state* must survive into the next life.
    client < "$BATCH_FILE" > /dev/null 2>&1 &
    MIDSTREAM=$!
    sleep 0.05
    kill -9 "$PID" 2>/dev/null || true
    wait "$MIDSTREAM" 2>/dev/null || true
    NEW="$PID"
    for _ in $(seq 1 600); do
      NEW="$(cat "$SRV/serve.pid" 2>/dev/null || echo "$PID")"
      [[ -n "$NEW" && "$NEW" != "$PID" ]] && break
      sleep 0.05
    done
    [[ "$NEW" != "$PID" ]] \
      || die "supervisor never restarted the daemon (life $K)" \
             "$WORK/sup.log"
    client < "$BATCH_FILE" > "$WORK/run$K.txt" \
      || die "batch failed after restart $K" "$WORK/sup.log"
    cmp -s "$WORK/base.txt" "$WORK/run$K.txt" \
      || { diff "$WORK/base.txt" "$WORK/run$K.txt" >&2 || true
           die "answers changed across daemon life $K"; }
    echo "life $((K + 1)): restarted after SIGKILL, batch byte-identical"
  done
  grep -q "warm start from snapshot" "$SRV"/serve.*.err \
    || die "no restarted life warm-started from the converged snapshot" \
           "$WORK/sup.log"

  echo "== serve: deadline-tripped query must answer, degraded =="
  echo "pts ${NAME_ARR[0]} max_steps=1" | client > "$WORK/deadline.txt" \
    || die "deadline query failed" "$WORK/deadline.txt"
  awk -F'\t' 'NR == 1 { exit !($2 == "degraded" && $5 != "" && $5 != "-") }' \
    "$WORK/deadline.txt" \
    || die "max_steps=1 did not degrade-but-answer" "$WORK/deadline.txt"

  echo "== serve: admission burst must shed while the heartbeat beats =="
  BURST_FILE="$WORK/burst.txt"
  {
    # Park both workers, then pipeline far past the 64-slot queue.
    echo "stall 1500"
    echo "stall 1500"
    for _ in $(seq 1 100); do echo "pts ${NAME_ARR[0]}"; done
  } > "$BURST_FILE"
  # The beat file is rewritten in place, so a read can catch it empty;
  # retry until a beat value lands.
  hbread() {
    local V=""
    for _ in $(seq 1 100); do
      V="$(cat "$SRV/heartbeat" 2>/dev/null || true)"
      [[ -n "$V" ]] && break
      sleep 0.01
    done
    echo "$V"
  }
  HB0="$(hbread)"
  # --retries 0: the client's backoff-and-retry would otherwise convert
  # most OVERLOADED replies into late successes, hiding the shed.
  "$SERVE_BIN" --client "$SOCK" --connect-timeout-ms 60000 --retries 0 \
    < "$BURST_FILE" > "$WORK/burst_out.txt" \
    || die "burst failed" "$WORK/burst_out.txt"
  HB1="$(hbread)"
  SHED="$(cut -f2 "$WORK/burst_out.txt" | grep -c '^overloaded$' || true)"
  [[ "$SHED" -ge 1 ]] \
    || die "burst past the queue cap shed nothing" "$WORK/burst_out.txt"
  [[ "$HB0" != "$HB1" ]] \
    || die "heartbeat stalled during the overload burst"
  echo "   $SHED of 102 burst queries shed with explicit OVERLOADED"

  echo "== serve: a retrying client must win back shed queries =="
  # Same burst, but let the client's jittered exponential backoff ride
  # out the stalls: the retries must recover at least part of the shed
  # (typically all of it) and narrate what they are doing.
  "$SERVE_BIN" --client "$SOCK" --connect-timeout-ms 60000 \
    --retries 6 --retry-base-ms 100 \
    < "$BURST_FILE" > "$WORK/retry_out.txt" 2> "$WORK/retry_err.txt" \
    || die "retried burst failed" "$WORK/retry_out.txt" "$WORK/retry_err.txt"
  RETRY_SHED="$(cut -f2 "$WORK/retry_out.txt" | grep -c '^overloaded$' || true)"
  grep -q "overloaded, retry" "$WORK/retry_err.txt" \
    || die "client never narrated a retry" "$WORK/retry_err.txt"
  [[ "$RETRY_SHED" -lt "$SHED" ]] \
    || die "retries recovered nothing ($RETRY_SHED still overloaded)" \
           "$WORK/retry_out.txt" "$WORK/retry_err.txt"
  echo "   retries cut overloaded replies from $SHED to $RETRY_SHED"

  echo "== serve: shutdown must stop the supervisor tree cleanly =="
  echo shutdown | client > /dev/null || die "shutdown request failed"
  for _ in $(seq 1 200); do
    kill -0 "$SUP" 2>/dev/null || break
    sleep 0.05
  done
  if kill -0 "$SUP" 2>/dev/null; then
    die "supervisor still running after shutdown" "$WORK/sup.log"
  fi
  set +e
  wait "$SUP"
  CODE=$?
  set -e
  [[ "$CODE" -eq 0 ]] \
    || die "supervisor exited $CODE after a clean shutdown" "$WORK/sup.log"
  trap 'rm -rf "$WORK"' EXIT
  echo "== serve crash loop passed: $KILLS kills recovered," \
       "answers byte-identical across lives =="
  exit 0
fi

if [[ "$DELTA" -eq 1 ]]; then
  SERVE_BIN="${CTP_SERVE:-build/tools/ctp-serve}"
  GENFACTS_BIN="${CTP_GENFACTS:-build/tools/ctp-genfacts}"
  VERIFY_BIN="${CTP_VERIFY:-build/tools/ctp-verify}"
  for B in "$SERVE_BIN" "$GENFACTS_BIN" "$VERIFY_BIN"; do
    if [[ ! -x "$B" ]]; then
      echo "error: '$B' not found (build first or set CTP_SERVE /" \
           "CTP_GENFACTS / CTP_VERIFY)" >&2
      exit 1
    fi
  done
  SOCK="$WORK/d.sock"
  FACTS="$WORK/base_facts"
  mkdir -p "$FACTS"
  DPID=""
  trap 'kill -9 "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

  die() {
    echo "FAIL: $1" >&2
    shift
    for F in "$@"; do cat "$F" >&2 2>/dev/null || true; done
    exit 1
  }
  # Transaction verbs must be ONE client invocation each: a pipelined
  # stream may be reordered by the worker pool (documented caveat).
  cq() { "$SERVE_BIN" --client "$SOCK" --connect-timeout-ms 120000; }
  cfast() {
    "$SERVE_BIN" --client "$SOCK" --connect-timeout-ms 3000 --retries 0
  }
  startd() { # startd CKPT_DIR LOG [CRASH_STAGE]
    rm -f "$SOCK"
    CTP_TXN_CRASH="${3:-}" "$SERVE_BIN" --socket "$SOCK" \
      --facts "$FACTS" --config "$CONFIG" --checkpoint-dir "$1" \
      --queue-cap 64 > "$2" 2>&1 &
    DPID=$!
    echo ping | cq > /dev/null || die "daemon never answered a ping" "$2"
  }
  stopd() {
    echo shutdown | cq > /dev/null 2>&1 || true
    wait "$DPID" 2>/dev/null || true
    DPID=""
  }
  txepoch() { # prints the committed-transaction epoch of the daemon
    echo txstat | cq | cut -f5 | sed -n 's/^epoch=\([0-9]*\).*/\1/p'
  }

  "$GENFACTS_BIN" "$PRESET" "$FACTS" > /dev/null \
    || die "facts generation failed"

  echo "== delta: $PRESET/$CONFIG, cold solve and baseline batch =="
  CKPT0="$WORK/ck0"
  startd "$CKPT0" "$WORK/d0.log"
  NAMES="$(echo "vars 12" | cq | cut -f5)" \
    || die "name discovery failed" "$WORK/d0.log"
  read -r -a NAME_ARR <<< "$NAMES"
  [[ "${#NAME_ARR[@]}" -ge 4 ]] \
    || die "vars returned too few names: '$NAMES'"
  BATCH_FILE="$WORK/batch.txt"
  {
    for N in "${NAME_ARR[@]}"; do echo "pts $N"; done
    echo "alias ${NAME_ARR[0]} ${NAME_ARR[1]}"
    echo "alias ${NAME_ARR[2]} ${NAME_ARR[3]}"
  } > "$BATCH_FILE"
  cq < "$BATCH_FILE" > "$WORK/base_pre.txt" \
    || die "baseline batch failed" "$WORK/d0.log"

  # The transaction under test: remove one existing assign edge (any
  # line that appears exactly once, so a TSV edit means the same thing
  # as one `rm` op) and add one new edge between advertised variables.
  RM_LINE="$(sort "$FACTS/Assign.facts" | uniq -u | head -n 1)"
  [[ -n "$RM_LINE" ]] || die "no unique assign row to remove"
  ADD_LINE=""
  for A in "${NAME_ARR[@]}"; do
    for B in "${NAME_ARR[@]}"; do
      [[ "$A" == "$B" ]] && continue
      CAND="$A"$'\t'"$B"
      if ! grep -qxF "$CAND" "$FACTS/Assign.facts"; then
        ADD_LINE="$CAND"
        break 2
      fi
    done
  done
  [[ -n "$ADD_LINE" ]] || die "no fresh assign edge available to add"
  RM_OP="rm assign ${RM_LINE%$'\t'*} ${RM_LINE#*$'\t'}"
  ADD_OP="add assign ${ADD_LINE%$'\t'*} ${ADD_LINE#*$'\t'}"
  stopd

  echo "== delta: an aborted transaction must not change any answer =="
  CK="$WORK/ck_abort"
  cp -r "$CKPT0" "$CK"
  startd "$CK" "$WORK/d_abort.log"
  echo begin | cq | awk -F'\t' '{ exit !($2 == "ok") }' \
    || die "begin failed" "$WORK/d_abort.log"
  echo "delta $ADD_OP" | cq | awk -F'\t' '{ exit !($2 == "ok") }' \
    || die "delta op refused" "$WORK/d_abort.log"
  echo abort | cq | awk -F'\t' '{ exit !($2 == "ok" && $5 == "aborted") }' \
    || die "abort failed" "$WORK/d_abort.log"
  cq < "$BATCH_FILE" > "$WORK/aborted.txt"
  cmp -s "$WORK/base_pre.txt" "$WORK/aborted.txt" \
    || { diff "$WORK/base_pre.txt" "$WORK/aborted.txt" >&2 || true
         die "aborted transaction changed answers"; }
  stopd
  echo "   abort left the batch byte-identical"

  echo "== delta: SIGKILL at every commit-pipeline stage, then recover =="
  for STAGE in begin op solve certify promote commit; do
    CK="$WORK/ck_$STAGE"
    cp -r "$CKPT0" "$CK"
    startd "$CK" "$WORK/d_${STAGE}.log" "$STAGE"
    # Each verb is its own client invocation; once the armed crash point
    # fires the daemon is SIGKILLed mid-verb, so later sends just fail.
    echo begin | cfast > /dev/null 2>&1 || true
    kill -0 "$DPID" 2>/dev/null && \
      { echo "delta $ADD_OP" | cfast > /dev/null 2>&1 || true; }
    kill -0 "$DPID" 2>/dev/null && \
      { echo "delta $RM_OP" | cfast > /dev/null 2>&1 || true; }
    kill -0 "$DPID" 2>/dev/null && \
      { echo commit | cfast > /dev/null 2>&1 || true; }
    wait "$DPID" 2>/dev/null || true
    DPID=""
    grep -q "CTP_TXN_CRASH firing at stage '$STAGE'" "$WORK/d_${STAGE}.log" \
      || die "crash point '$STAGE' never fired" "$WORK/d_${STAGE}.log"

    startd "$CK" "$WORK/r_${STAGE}.log"
    EPOCH="$(txepoch)"
    if [[ "$STAGE" == "commit" ]]; then
      WANT=1 # The durable commit record landed before the kill.
    else
      WANT=0 # No commit record: recovery must abort the transaction.
    fi
    [[ "$EPOCH" == "$WANT" ]] \
      || die "stage $STAGE recovered to epoch $EPOCH, want $WANT" \
             "$WORK/r_${STAGE}.log"
    cq < "$BATCH_FILE" > "$WORK/rec_${STAGE}.txt"
    if [[ "$WANT" -eq 0 ]]; then
      cmp -s "$WORK/base_pre.txt" "$WORK/rec_${STAGE}.txt" \
        || { diff "$WORK/base_pre.txt" "$WORK/rec_${STAGE}.txt" >&2 || true
             die "stage $STAGE recovery changed pre-txn answers"; }
    else
      grep -q "startup certification passed" "$WORK/r_${STAGE}.log" \
        || die "replayed state was not re-certified" "$WORK/r_${STAGE}.log"
      cp "$WORK/rec_${STAGE}.txt" "$WORK/post_replayed.txt"
    fi
    stopd
    echo "   stage $STAGE: killed, recovered to epoch $WANT, answers OK"
  done
  [[ -f "$WORK/post_replayed.txt" ]] \
    || die "the commit-stage crash never produced a committed recovery"

  echo "== delta: an uninterrupted commit must match the replayed one =="
  CK="$WORK/ck_ok"
  cp -r "$CKPT0" "$CK"
  startd "$CK" "$WORK/d_ok.log"
  echo begin | cq > /dev/null || die "begin failed" "$WORK/d_ok.log"
  echo "delta $ADD_OP" | cq | awk -F'\t' '{ exit !($2 == "ok") }' \
    || die "add op refused" "$WORK/d_ok.log"
  echo "delta $RM_OP" | cq | awk -F'\t' '{ exit !($2 == "ok") }' \
    || die "rm op refused" "$WORK/d_ok.log"
  echo commit | cq > "$WORK/commit.txt"
  awk -F'\t' '{ exit !($2 == "ok" && $4 == "1" && $5 ~ /^committed/) }' \
    "$WORK/commit.txt" \
    || die "commit did not publish epoch 1" "$WORK/commit.txt" \
           "$WORK/d_ok.log"
  cq < "$BATCH_FILE" > "$WORK/post.txt"
  cmp -s "$WORK/post.txt" "$WORK/post_replayed.txt" \
    || { diff "$WORK/post.txt" "$WORK/post_replayed.txt" >&2 || true
         die "crash-replayed commit differs from the uninterrupted one"; }
  stopd
  echo "   uninterrupted commit byte-identical to the crash-replayed one"

  echo "== delta: committed state must match a cold solve of edited facts =="
  EDITED="$WORK/edited_facts"
  cp -r "$FACTS" "$EDITED"
  grep -vxF "$RM_LINE" "$EDITED/Assign.facts" > "$EDITED/Assign.tmp"
  mv "$EDITED/Assign.tmp" "$EDITED/Assign.facts"
  printf '%s\n' "$ADD_LINE" >> "$EDITED/Assign.facts"
  rm -f "$SOCK"
  "$SERVE_BIN" --socket "$SOCK" --facts "$EDITED" --config "$CONFIG" \
    --queue-cap 64 > "$WORK/oracle.log" 2>&1 &
  DPID=$!
  echo ping | cq > /dev/null || die "oracle daemon never answered" \
                                    "$WORK/oracle.log"
  cq < "$BATCH_FILE" > "$WORK/oracle.txt"
  stopd
  # Strip the epoch column (field 4): the oracle never committed.
  cmp -s <(cut -f1,2,3,5 "$WORK/post.txt") \
         <(cut -f1,2,3,5 "$WORK/oracle.txt") \
    || { diff <(cut -f1,2,3,5 "$WORK/post.txt") \
              <(cut -f1,2,3,5 "$WORK/oracle.txt") >&2 || true
         die "committed answers differ from the edited-facts cold solve"; }
  echo "   answers identical modulo the epoch column"

  echo "== delta: ctp-verify must certify the edited facts directory =="
  "$VERIFY_BIN" --facts "$EDITED" --config "$CONFIG" --backend native \
    > "$WORK/verify.txt" 2>&1 \
    || die "ctp-verify rejected the edited facts" "$WORK/verify.txt"

  trap 'rm -rf "$WORK"' EXIT
  echo "== delta crash loop passed: 6 stage kills recovered, committed" \
       "state certified and equivalent to a cold solve =="
  exit 0
fi

ANALYZE="${CTP_ANALYZE:-build/tools/ctp-analyze}"
if [[ ! -x "$ANALYZE" ]]; then
  echo "error: ctp-analyze not found at '$ANALYZE' (build first or set" \
       "CTP_ANALYZE)" >&2
  exit 1
fi

if [[ "$OOM" -eq 1 ]]; then
  VERIFY_BIN="${CTP_VERIFY:-build/tools/ctp-verify}"
  if [[ ! -x "$VERIFY_BIN" ]]; then
    echo "error: ctp-verify not found at '$VERIFY_BIN' (build first or" \
         "set CTP_VERIFY)" >&2
    exit 1
  fi
  # bloat/2-object+H peaks around ~27 MB RSS here, so a KB-granular
  # RLIMIT_AS ladder can bracket it; presets that converge in a few MB
  # would need limits below the runtime's own floor.
  OPRESET=bloat
  OCONFIG=2-object+H

  die() {
    echo "FAIL: $1" >&2
    shift
    for F in "$@"; do cat "$F" >&2 2>/dev/null || true; done
    exit 1
  }

  echo "== oom 1: probe a limit that kills the ungoverned run =="
  # The exact lethal limit shifts with allocator and libc versions, so
  # probe a descending ladder instead of hard-coding one value.
  LIMIT_KB=""
  for CAND in 36000 33000 30000 27000 24000; do
    set +e
    ( ulimit -v "$CAND" && exec "$ANALYZE" --preset "$OPRESET" \
        --config "$OCONFIG" ) \
      > "$WORK/ungov.txt" 2> "$WORK/ungov.err"
    CODE=$?
    set -e
    if [[ "$CODE" -ne 0 && "$CODE" -ne 3 ]]; then
      LIMIT_KB="$CAND"
      echo "   ulimit -v $CAND KB: ungoverned run died, exit $CODE" \
           "(the pre-governor failure mode)"
      break
    fi
    echo "   ulimit -v $CAND KB: survived (exit $CODE), tightening"
  done
  [[ -n "$LIMIT_KB" ]] \
    || die "no probed limit killed the ungoverned run; widen the ladder"

  # ~85% of the rlimit, the same derivation ctp-batch --mem-limit-mb and
  # the supervisor's rlimit-mem retries use for the cooperative budget.
  BUDGET_MB=$(( LIMIT_KB * 85 / 100 / 1024 ))
  [[ "$BUDGET_MB" -ge 1 ]] || BUDGET_MB=1

  echo "== oom 2: governed run under the same limit must degrade =="
  GOV_OUT="$WORK/gov_out"
  mkdir -p "$GOV_OUT"
  set +e
  ( ulimit -v "$LIMIT_KB" && exec "$ANALYZE" --preset "$OPRESET" \
      --config "$OCONFIG" --mem-budget-mb "$BUDGET_MB" --fallback \
      --out "$GOV_OUT" ) \
    > "$WORK/gov.txt" 2> "$WORK/gov.err"
  CODE=$?
  set -e
  [[ "$CODE" -eq 3 ]] \
    || die "governed run exited $CODE, want 3 (degraded)" \
           "$WORK/gov.txt" "$WORK/gov.err"
  grep -q "MemoryBudget" "$WORK/gov.txt" \
    || die "no rung reported a MemoryBudget trip" "$WORK/gov.txt"
  RUNG_CFG="$(awk '/<- answered/ { print $3 }' "$WORK/gov.txt")"
  RUNG_CFG="${RUNG_CFG%%(*}" # "2-type+H(ts)" -> the --config spelling.
  [[ -n "$RUNG_CFG" ]] \
    || die "could not parse the answered rung" "$WORK/gov.txt"
  echo "   exit 3 with --mem-budget-mb $BUDGET_MB," \
       "landed on $RUNG_CFG"

  echo "== oom 3: results must match an unconstrained cold solve =="
  COLD_OUT="$WORK/cold_out"
  mkdir -p "$COLD_OUT"
  "$ANALYZE" --preset "$OPRESET" --config "$RUNG_CFG" --out "$COLD_OUT" \
    > "$WORK/cold.txt" \
    || die "cold solve at $RUNG_CFG failed" "$WORK/cold.txt"
  diff -r "$GOV_OUT" "$COLD_OUT" > "$WORK/oomdiff.txt" \
    || { cat "$WORK/oomdiff.txt" >&2
         die "governed results differ from the cold solve at $RUNG_CFG"; }
  echo "   byte-identical TSVs at $RUNG_CFG"

  echo "== oom 4: ctp-verify must certify the landed configuration =="
  "$VERIFY_BIN" --preset "$OPRESET" --config "$RUNG_CFG" \
    --backend native --snapshot-dir "$WORK/oom_snap" \
    > "$WORK/oomverify.txt" 2>&1 \
    || die "ctp-verify rejected $RUNG_CFG" "$WORK/oomverify.txt"

  echo "== oom drill passed: ungoverned dies at $LIMIT_KB KB, governed" \
       "degrades to certified byte-identical results =="
  exit 0
fi

if [[ "$BATCH" -eq 1 ]]; then
  BATCH_BIN="${CTP_BATCH:-build/tools/ctp-batch}"
  if [[ ! -x "$BATCH_BIN" ]]; then
    echo "error: ctp-batch not found at '$BATCH_BIN' (build first or set" \
         "CTP_BATCH)" >&2
    exit 1
  fi
  MATRIX=(--presets antlr,luindex,pmd --configs 2-object+H,insensitive
          --analyze "$ANALYZE" --checkpoint-every 500)
  rows() { grep -E '^[a-z]+/' "$1"; }

  echo "== batch 1: chaos matrix must terminate with a complete report =="
  set +e
  "$BATCH_BIN" --work "$WORK/chaos" "${MATRIX[@]}" \
    --chaos --seed 7 --chaos-kills 4 > "$WORK/chaos.out" 2>&1
  CODE=$?
  set -e
  if [[ "$CODE" -ne 0 ]]; then
    echo "FAIL: chaos batch exited $CODE" >&2
    cat "$WORK/chaos.out" >&2
    exit 1
  fi
  if [[ "$(rows "$WORK/chaos.out" | wc -l)" -ne 6 ]]; then
    echo "FAIL: chaos report is missing rows" >&2
    cat "$WORK/chaos.out" >&2
    exit 1
  fi
  KILLS="$(grep -c '"class":"chaos-kill"' "$WORK/chaos/journal.jsonl" || true)"
  echo "   complete report, $KILLS chaos kill(s) injected and recovered"

  echo "== batch 2: SIGKILL the supervisor mid-run, re-invoke, compare =="
  "$BATCH_BIN" --work "$WORK/half" "${MATRIX[@]}" \
    > "$WORK/half1.out" 2>&1 &
  SUP=$!
  # Let some (but not all) jobs finish, then kill the supervisor dead.
  for _ in $(seq 1 200); do
    N="$(grep -c '"type":"outcome"' "$WORK/half/journal.jsonl" \
         2>/dev/null || true)"
    [[ "${N:-0}" -ge 2 ]] && break
    sleep 0.1
  done
  kill -9 "$SUP" 2>/dev/null || true
  wait "$SUP" 2>/dev/null || true
  FINISHED="$(grep -c '"type":"outcome"' "$WORK/half/journal.jsonl")"
  if [[ "$FINISHED" -lt 1 || "$FINISHED" -ge 6 ]]; then
    echo "note: supervisor died with $FINISHED finished job(s);" \
         "replay check degenerates but still runs"
  fi
  # Render the finished subset's rows twice: once right now (replay-only
  # run over the same matrix) and once after the batch completes.
  "$BATCH_BIN" --work "$WORK/half" "${MATRIX[@]}" > "$WORK/half2.out" 2>&1
  FROM_JOURNAL_ROWS="$WORK/expected_rows.txt"
  rows "$WORK/half2.out" > "$FROM_JOURNAL_ROWS"
  if [[ "$(wc -l < "$FROM_JOURNAL_ROWS")" -ne 6 ]]; then
    echo "FAIL: resumed batch report incomplete" >&2
    cat "$WORK/half2.out" >&2
    exit 1
  fi
  # A third invocation replays everything: rows must be byte-identical.
  "$BATCH_BIN" --work "$WORK/half" "${MATRIX[@]}" > "$WORK/half3.out" 2>&1
  if ! diff "$FROM_JOURNAL_ROWS" <(rows "$WORK/half3.out") \
       > "$WORK/rowdiff.txt"; then
    echo "FAIL: report rows changed across supervisor lives:" >&2
    cat "$WORK/rowdiff.txt" >&2
    exit 1
  fi
  # No lost or duplicated journal entries: exactly one terminal outcome
  # record per job across all supervisor lives.
  DUPES="$(grep -o '"type":"outcome","job":"[^"]*"' \
           "$WORK/half/journal.jsonl" | sort | uniq -d)"
  if [[ -n "$DUPES" ]]; then
    echo "FAIL: duplicated outcome records:" >&2
    echo "$DUPES" >&2
    exit 1
  fi
  echo "   $FINISHED job(s) survived the supervisor kill;" \
       "all rows byte-identical across lives, no duplicate outcomes"
  echo "== batch crash loop passed =="
  exit 0
fi

CKPT="$WORK/ckpt"
mkdir -p "$CKPT"

# Baseline: one uninterrupted converged run.
"$ANALYZE" --preset "$PRESET" --config "$CONFIG" > "$WORK/baseline.txt"
summary() { grep -E '^(termination|  (pts|hpts|hload|call|reach|gpts) )' "$1"; }

echo "== crash loop: $PRESET/$CONFIG, $BUDGET derivations per life =="
ITER=0
RESUME=()
SAW_CORRUPTION_RECOVERY=0
while true; do
  ITER=$((ITER + 1))
  if [[ "$ITER" -gt "$MAX_ITERS" ]]; then
    echo "FAIL: no convergence after $MAX_ITERS lives" >&2
    exit 1
  fi
  # Life 2 writes its snapshots through a sticky bit-flip fault: its last
  # checkpoint is corrupt, and life 3 must recover by cold-starting.
  FAULT=""
  if [[ "$ITER" -eq 2 ]]; then
    FAULT=bitflip
  fi
  set +e
  CTP_SNAPSHOT_FAULT="$FAULT" "$ANALYZE" --preset "$PRESET" \
    --config "$CONFIG" --max-derivations "$BUDGET" \
    --checkpoint-dir "$CKPT" "${RESUME[@]}" \
    > "$WORK/run$ITER.txt" 2> "$WORK/run$ITER.err"
  CODE=$?
  set -e
  RESUME=(--resume)
  case "$CODE" in
    0)
      echo "life $ITER: converged"
      break
      ;;
    3)
      if [[ -n "$FAULT" ]]; then
        echo "life $ITER: killed by budget, snapshot writes sabotaged"
      else
        echo "life $ITER: killed by budget (snapshot saved)"
      fi
      ;;
    *)
      echo "FAIL: life $ITER exited $CODE" >&2
      cat "$WORK/run$ITER.err" >&2
      exit 1
      ;;
  esac
  if grep -q "corrupt" "$WORK/run$ITER.err" 2>/dev/null; then
    SAW_CORRUPTION_RECOVERY=1
    echo "life $ITER: detected corrupt snapshot, cold-started"
  fi
done
if grep -q "corrupt" "$WORK/run$ITER.err" 2>/dev/null; then
  SAW_CORRUPTION_RECOVERY=1
fi

if [[ "$SAW_CORRUPTION_RECOVERY" -ne 1 ]]; then
  echo "FAIL: the sabotaged life never triggered corruption recovery" >&2
  exit 1
fi

if ! diff <(summary "$WORK/baseline.txt") <(summary "$WORK/run$ITER.txt") \
     > "$WORK/diff.txt"; then
  echo "FAIL: resumed result differs from uninterrupted run:" >&2
  cat "$WORK/diff.txt" >&2
  exit 1
fi
echo "== crash loop converged in $ITER lives, result identical =="
