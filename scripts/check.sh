#!/usr/bin/env bash
#===- scripts/check.sh - Build and test, then repeat under sanitizers ----===#
#
# Part of the ctp project: a reproduction of "Context Transformations for
# Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
#
# Tier-1 gate: a normal RelWithDebInfo build + full ctest run, followed by
# the same suite under AddressSanitizer + UndefinedBehaviorSanitizer
# (-DCTP_SANITIZE=address,undefined). Both must pass.
#
# Usage: scripts/check.sh [--no-sanitize]
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=1
[[ "${1:-}" == "--no-sanitize" ]] && SANITIZE=0

echo "== normal build =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build -j"$(nproc)" --output-on-failure

if [[ "$SANITIZE" == 1 ]]; then
  echo "== sanitizer build (address,undefined) =="
  cmake -B build-asan -S . -DCTP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -j"$(nproc)" --output-on-failure
fi

echo "== all checks passed =="
