#!/usr/bin/env bash
#===- scripts/check.sh - Build and test, then repeat under sanitizers ----===#
#
# Part of the ctp project: a reproduction of "Context Transformations for
# Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
#
# Tier-1 gate: a normal RelWithDebInfo build, the fast client-facing test
# subset (ctest -L clients) for quick signal, a contextless-flavour smoke
# (ctest -L flavours plus ctp-verify certifying the cutshortcut and unify
# rungs on two presets), then the full ctest run,
# followed by the same suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (-DCTP_SANITIZE=address,undefined). All must
# pass. With --tidy, also runs clang-tidy via scripts/tidy.sh (skipped
# gracefully when clang-tidy is not installed).
#
# Usage: scripts/check.sh [--no-sanitize] [--tidy] [--crashloop] [--tsan]
#                          [--batch] [--serve] [--delta] [--asan] [--oom]
#
# --crashloop additionally runs the out-of-process kill/resume loop
# (scripts/crashloop.sh) against the fresh build — the same loop ctest
# runs under the "robustness" label.
#
# --batch additionally smokes the batch supervisor: a ctp-batch --chaos
# run over 3 presets x 2 configs with a tight chaos budget must
# terminate with a complete report and exit 0.
#
# --serve additionally smokes the resident analysis service: the serve
# unit suite plus the supervised kill/recover + overload drill through
# the real ctp-serve binary (ctest -L serve, which includes
# crashloop.sh --serve).
#
# --delta additionally smokes transactional incremental re-solve: the
# incremental unit suite plus the SIGKILL-at-every-commit-stage recovery
# drill through the real ctp-serve binary (ctest -L incremental, which
# includes crashloop.sh --delta).
#
# --asan runs a targeted address+undefined matrix in its own build
# directory (build-asan): the engine-semantics core, the
# fixpoint-certification suite, the contextless-flavour suite, and the
# memory-governor suite (ctest -L 'core|verify|flavours|memory' — the
# unify union-find's pointer juggling and the governor's new-handler
# paths included), so the slow memory-error hunt concentrates on the
# solver paths the verifier exercises hardest. Independent of the
# default full-asan pass, which --no-sanitize turns off.
#
# --oom additionally runs the memory-governance drills: the governor
# unit suite (ctest -L memory), a CTP_MEM_FAULT simulated-pressure smoke
# through the real ctp-analyze binary (exit 3, MemoryBudget on rung 0),
# and the RLIMIT_AS drill (scripts/crashloop.sh --oom) proving the
# governed binary degrades with byte-identical certified results where
# the ungoverned one SIGABRTs. The rlimit drill only runs against the
# normal build; sanitizer builds cover the governor through the
# simulation paths (ASan's address-space reservations are incompatible
# with a meaningful RLIMIT_AS).
#
# --tsan additionally builds with ThreadSanitizer (-DCTP_SANITIZE=thread)
# and smokes the concurrency-adjacent suites under it: the resource
# governor (watchdog thread + cancellation flag), the crash-safety
# snapshot/resume tests, the supervisor/heartbeat suite (concurrent
# beat writers race budget polls), the serve unit suite (reader/worker
# pools share the admission queue), the incremental-transaction suite
# (a committing writer races query readers on the shared state lock),
# the contextless-flavour suite (the unify union-find under concurrent
# budget polls), and one supervised chaos run through ctp-batch. TSAN
# must stay quiet throughout.
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=1
TIDY=0
CRASHLOOP=0
TSAN=0
BATCH=0
SERVE=0
DELTA=0
ASAN=0
OOM=0
for ARG in "$@"; do
  case "$ARG" in
    --no-sanitize) SANITIZE=0 ;;
    --tidy) TIDY=1 ;;
    --crashloop) CRASHLOOP=1 ;;
    --tsan) TSAN=1 ;;
    --batch) BATCH=1 ;;
    --serve) SERVE=1 ;;
    --delta) DELTA=1 ;;
    --asan) ASAN=1 ;;
    --oom) OOM=1 ;;
    *)
      echo "usage: scripts/check.sh [--no-sanitize] [--tidy] [--crashloop]" \
           "[--tsan] [--batch] [--serve] [--delta] [--asan] [--oom]" >&2
      exit 2
      ;;
  esac
done

echo "== normal build =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j"$(nproc)"
echo "== client checker subset (ctest -L clients) =="
ctest --test-dir build -j"$(nproc)" -L clients --output-on-failure
echo "== provenance recorder subset (ctest -L provenance) =="
ctest --test-dir build -j"$(nproc)" -L provenance --output-on-failure
echo "== fixpoint certification smoke (ctp-verify, one preset) =="
build/tools/ctp-verify --preset luindex \
  --snapshot-dir build/verify-smoke-snap >/dev/null
echo "== contextless flavour smoke (ctest -L flavours + certification) =="
ctest --test-dir build -j"$(nproc)" -L flavours --output-on-failure
for PRESET in antlr luindex; do
  for CFG in cutshortcut unify; do
    build/tools/ctp-verify --preset "$PRESET" --config "$CFG" \
      --checks closure,support,oracle >/dev/null
  done
done
echo "== full suite =="
ctest --test-dir build -j"$(nproc)" --output-on-failure

if [[ "$CRASHLOOP" == 1 ]]; then
  echo "== crash/resume loop =="
  CTP_ANALYZE=build/tools/ctp-analyze scripts/crashloop.sh
fi

if [[ "$BATCH" == 1 ]]; then
  echo "== batch supervisor chaos smoke =="
  WORK="$(mktemp -d "${TMPDIR:-/tmp}/ctp_batch_smoke.XXXXXX")"
  build/tools/ctp-batch --work "$WORK" \
    --presets antlr,luindex,pmd --configs 2-object+H,insensitive \
    --analyze build/tools/ctp-analyze --checkpoint-every 500 \
    --chaos --seed 11 --chaos-kills 3
  rm -rf "$WORK"
fi

if [[ "$SERVE" == 1 ]]; then
  echo "== resident service smoke (ctest -L serve) =="
  ctest --test-dir build -j"$(nproc)" -L serve --output-on-failure
fi

if [[ "$DELTA" == 1 ]]; then
  echo "== transactional delta smoke (ctest -L incremental) =="
  ctest --test-dir build -j"$(nproc)" -L incremental --output-on-failure
fi

if [[ "$OOM" == 1 ]]; then
  echo "== memory-governor unit suite (ctest -L memory) =="
  ctest --test-dir build -j"$(nproc)" -L memory --output-on-failure
  echo "== simulated-pressure smoke (CTP_MEM_FAULT) =="
  # Sustained simulated pressure must degrade the precise run to exit 3
  # with a MemoryBudget trip on rung 0 — no rlimit involved, so this
  # same smoke is safe under any sanitizer build.
  SMOKE_OUT="$(mktemp "${TMPDIR:-/tmp}/ctp_memfault.XXXXXX")"
  set +e
  CTP_MEM_FAULT='soft@50x1073741824' build/tools/ctp-analyze \
    --preset antlr --config 2-object+H --fallback > "$SMOKE_OUT" 2>&1
  CODE=$?
  set -e
  if [[ "$CODE" -ne 3 ]] || ! grep -q MemoryBudget "$SMOKE_OUT"; then
    echo "FAIL: CTP_MEM_FAULT smoke exited $CODE without a MemoryBudget" \
         "trip" >&2
    cat "$SMOKE_OUT" >&2
    exit 1
  fi
  rm -f "$SMOKE_OUT"
  echo "== supervised batch under sustained memory faults =="
  # Children inherit CTP_MEM_FAULT; the supervisor's retry ladder must
  # ride the MemoryBudget trips down to a degraded row instead of
  # triaging rlimit-mem or failing the job.
  WORK="$(mktemp -d "${TMPDIR:-/tmp}/ctp_oom_batch.XXXXXX")"
  set +e
  CTP_MEM_FAULT='soft@2000x1073741824' build/tools/ctp-batch \
    --work "$WORK" --presets antlr --configs 2-object+H \
    --analyze build/tools/ctp-analyze --mem-limit-mb 512 \
    > "$WORK/out.txt" 2>&1
  CODE=$?
  set -e
  if [[ "$CODE" -ne 3 ]] || ! grep -q "completed-degraded" "$WORK/out.txt"; then
    echo "FAIL: memory-faulted batch exited $CODE without a degraded" \
         "row" >&2
    cat "$WORK/out.txt" >&2
    exit 1
  fi
  rm -rf "$WORK"
  echo "== RLIMIT_AS drill (crashloop.sh --oom) =="
  CTP_ANALYZE=build/tools/ctp-analyze CTP_VERIFY=build/tools/ctp-verify \
    scripts/crashloop.sh --oom
fi

if [[ "$TIDY" == 1 ]]; then
  echo "== clang-tidy =="
  scripts/tidy.sh build
fi

if [[ "$TSAN" == 1 ]]; then
  echo "== ThreadSanitizer smoke (governor + checkpoint/resume + serve) =="
  cmake -B build-tsan -S . -DCTP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" \
    --target governor_test snapshot_test resume_test supervisor_test \
             serve_test verify_test incremental_test flavours_test \
             memory_test ctp-crashkid ctp-analyze ctp-batch
  ctest --test-dir build-tsan -j"$(nproc)" \
    -R '^(governor_test|snapshot_test|resume_test|supervisor_test|serve_test|verify_test|incremental_test|flavours_test|memory_test)$' \
    --output-on-failure
  echo "== ThreadSanitizer supervised chaos run =="
  WORK="$(mktemp -d "${TMPDIR:-/tmp}/ctp_tsan_batch.XXXXXX")"
  build-tsan/tools/ctp-batch --work "$WORK" \
    --presets antlr --configs insensitive,2-object+H \
    --analyze build-tsan/tools/ctp-analyze --checkpoint-every 500 \
    --chaos --seed 3 --chaos-kills 2
  rm -rf "$WORK"
fi

if [[ "$ASAN" == 1 ]]; then
  echo "== targeted ASan+UBSan matrix (ctest -L 'core|verify|flavours|memory') =="
  cmake -B build-asan -S . -DCTP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -j"$(nproc)" -L 'core|verify|flavours|memory' \
    --output-on-failure
fi

if [[ "$SANITIZE" == 1 ]]; then
  echo "== sanitizer build (address,undefined) =="
  cmake -B build-asan -S . -DCTP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -j"$(nproc)" --output-on-failure
fi

echo "== all checks passed =="
