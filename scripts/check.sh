#!/usr/bin/env bash
#===- scripts/check.sh - Build and test, then repeat under sanitizers ----===#
#
# Part of the ctp project: a reproduction of "Context Transformations for
# Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
#
# Tier-1 gate: a normal RelWithDebInfo build, the fast client-facing test
# subset (ctest -L clients) for quick signal, then the full ctest run,
# followed by the same suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (-DCTP_SANITIZE=address,undefined). All must
# pass. With --tidy, also runs clang-tidy via scripts/tidy.sh (skipped
# gracefully when clang-tidy is not installed).
#
# Usage: scripts/check.sh [--no-sanitize] [--tidy] [--crashloop] [--tsan]
#
# --crashloop additionally runs the out-of-process kill/resume loop
# (scripts/crashloop.sh) against the fresh build — the same loop ctest
# runs under the "robustness" label.
#
# --tsan additionally builds with ThreadSanitizer (-DCTP_SANITIZE=thread)
# and smokes the concurrency-adjacent suites under it: the resource
# governor (watchdog thread + cancellation flag) and the crash-safety
# snapshot/resume tests.
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=1
TIDY=0
CRASHLOOP=0
TSAN=0
for ARG in "$@"; do
  case "$ARG" in
    --no-sanitize) SANITIZE=0 ;;
    --tidy) TIDY=1 ;;
    --crashloop) CRASHLOOP=1 ;;
    --tsan) TSAN=1 ;;
    *)
      echo "usage: scripts/check.sh [--no-sanitize] [--tidy] [--crashloop] [--tsan]" >&2
      exit 2
      ;;
  esac
done

echo "== normal build =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j"$(nproc)"
echo "== client checker subset (ctest -L clients) =="
ctest --test-dir build -j"$(nproc)" -L clients --output-on-failure
echo "== provenance recorder subset (ctest -L provenance) =="
ctest --test-dir build -j"$(nproc)" -L provenance --output-on-failure
echo "== full suite =="
ctest --test-dir build -j"$(nproc)" --output-on-failure

if [[ "$CRASHLOOP" == 1 ]]; then
  echo "== crash/resume loop =="
  CTP_ANALYZE=build/tools/ctp-analyze scripts/crashloop.sh
fi

if [[ "$TIDY" == 1 ]]; then
  echo "== clang-tidy =="
  scripts/tidy.sh build
fi

if [[ "$TSAN" == 1 ]]; then
  echo "== ThreadSanitizer smoke (governor + checkpoint/resume) =="
  cmake -B build-tsan -S . -DCTP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)" \
    --target governor_test snapshot_test resume_test
  ctest --test-dir build-tsan -j"$(nproc)" \
    -R '^(governor_test|snapshot_test|resume_test)$' --output-on-failure
fi

if [[ "$SANITIZE" == 1 ]]; then
  echo "== sanitizer build (address,undefined) =="
  cmake -B build-asan -S . -DCTP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan -j"$(nproc)" --output-on-failure
fi

echo "== all checks passed =="
