//===- bench/bench_subsumption_collapse.cpp - Collapsing ablation ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Ablation of the subsumption-collapsing extension (Section 8 proposes
// deleting subsumed facts but does not implement it): for every preset and
// the two "+H" configurations where subsuming facts matter most, compare
// the transformer-string solver with and without collapsing — live fact
// counts, retired facts, and time. Precision (CI projection) is asserted
// unchanged in the test suite; here we report the cost/benefit.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/Presets.h"

#include <cstdio>

using namespace ctp;
using ctx::Abstraction;

int main() {
  std::printf("Subsumption collapsing ablation (transformer strings).\n\n");
  std::printf("%-9s %-12s %10s %10s %10s %10s %10s\n", "bench", "config",
              "pts", "pts-col", "retired", "time", "time-col");

  analysis::SolverOptions Collapse;
  Collapse.CollapseSubsumedPts = true;

  struct Spec {
    const char *Label;
    ctx::Config (*Make)(Abstraction);
  };
  const Spec Specs[] = {{"1-call+H", ctx::oneCallH},
                        {"2-object+H", ctx::twoObjectH},
                        {"2-type+H", ctx::twoTypeH}};

  for (const std::string &Name : workload::presetNames()) {
    facts::FactDB DB = facts::extract(workload::generatePreset(Name));
    for (const Spec &S : Specs) {
      ctx::Config Cfg = S.Make(Abstraction::TransformerString);
      analysis::Results Plain = analysis::solve(DB, Cfg);
      analysis::Results Col = analysis::solve(DB, Cfg, Collapse);
      std::printf("%-9s %-12s %10zu %10zu %10zu %8.1fms %8.1fms\n",
                  Name.c_str(), S.Label, Plain.Stat.NumPts,
                  Col.Stat.NumPts, Col.Stat.CollapsedPts,
                  Plain.Stat.Seconds * 1e3, Col.Stat.Seconds * 1e3);
    }
  }

  std::printf("\nCollapsing always shrinks the live pts relation; whether "
              "it pays off in time depends on how\nmany subsuming facts a "
              "workload produces (the paper expects bloat-like programs "
              "to benefit most).\n");
  return 0;
}
