//===- bench/bench_memory_overhead.cpp - Governor metering cost -----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// What does memory governance cost when nothing is wrong? The governor's
// hot path is one relaxed atomic load per BudgetMeter poll and per
// noteBytes charge while disengaged, and a counter bump plus a
// time-strided /proc/self/statm re-read while engaged. This bench solves
// the bloat preset (the heaviest built-in workload) three ways —
// ungoverned, governed with a budget far above the peak (watermarks never
// approached), and governed with fault-armed polls (the engaged slow path
// on every single poll) — and reports median-of-3 times so EXPERIMENTS.md
// can state the metering overhead with a straight face. The modes run
// interleaved round-robin after a warmup solve, so allocator growth is
// not billed to whichever mode happens to run first.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "support/FaultInjection.h"
#include "support/Memory.h"
#include "workload/Presets.h"

#include <algorithm>
#include <cstdio>

using namespace ctp;
using ctx::Abstraction;

namespace {

constexpr int NumModes = 3;
constexpr int Rounds = 3;
const char *const ModeNames[NumModes] = {"ungoverned", "governed (no trips)",
                                         "fault-armed (no fire)"};

/// Arms mode \p M's governor state; the caller tears down with
/// fault::reset() + memgov::disable() after the solve.
void armMode(int M) {
  switch (M) {
  case 0: // Disengaged fast path: one relaxed load per poll.
    break;
  case 1: // Governed far above the real peak: watermark math every
          // poll, strided RSS re-reads, no trips.
    memgov::governMb(32768);
    break;
  case 2: // Fault armed with a window that opens far past any realistic
          // poll count: engagement without a budget keeps every poll on
          // the slow path — an upper bound on engagement cost.
    fault::armMemFault(fault::MemFault::SoftPressure, 1u << 30, 1);
    break;
  }
}

double median(double A, double B, double C) {
  double Lo = std::min(std::min(A, B), C);
  double Hi = std::max(std::max(A, B), C);
  return A + B + C - Lo - Hi;
}

} // namespace

int main() {
  const char *Preset = "bloat";
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);

  fault::reset();
  memgov::disable();

  // One untimed warmup: the first solve pays allocator growth and page
  // faults no mode should be billed for.
  analysis::Results Baseline = analysis::solve(DB, Cfg, {});

  double Times[NumModes][Rounds] = {};
  std::size_t Pts[NumModes] = {};
  for (int Round = 0; Round < Rounds; ++Round) {
    for (int M = 0; M < NumModes; ++M) {
      armMode(M);
      analysis::Results R = analysis::solve(DB, Cfg, {});
      fault::reset();
      memgov::disable();
      Times[M][Round] = R.Stat.Seconds;
      Pts[M] = R.Stat.NumPts;
    }
  }

  std::printf("Memory metering overhead on preset '%s', config %s:\n"
              "peak RSS %llu MB; median of %d interleaved rounds\n\n",
              Preset, Cfg.name().c_str(),
              static_cast<unsigned long long>(memgov::peakRssBytes() >> 20),
              Rounds);
  std::printf("%-22s %10s %10s\n", "mode", "time", "vs base");
  const double Base = median(Times[0][0], Times[0][1], Times[0][2]);
  for (int M = 0; M < NumModes; ++M) {
    const double T = median(Times[M][0], Times[M][1], Times[M][2]);
    std::printf("%-22s %8.1fms %+9.1f%%\n", ModeNames[M], T * 1e3,
                (T / Base - 1.0) * 1e2);
    if (Pts[M] != Baseline.Stat.NumPts)
      std::printf("  WARNING: |pts| disagrees with baseline (%zu vs %zu)\n",
                  Pts[M], Baseline.Stat.NumPts);
  }

  std::printf("\nthe disengaged fast path is the default for every run\n"
              "without --mem-budget-mb; CTP_MEM_FAULT arming shows the\n"
              "worst-case engaged cost (every poll on the slow path).\n");
  return 0;
}
