//===- bench/bench_provenance_overhead.cpp - Recorder cost ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// What does derivation provenance cost? For each preset x configuration
// pair, solve three times with recording off and three times with
// recording on (--provenance in ctp-lint terms) and compare medians,
// alongside the recorded-graph size — the memory the recorder holds. The
// disabled row is the zero-cost claim: Enabled=false is a single branch
// per derivation that never allocates, so "off" must track the seed
// solver's time to noise.
//
//===----------------------------------------------------------------------===//

#include "analysis/Provenance.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/Presets.h"

#include <algorithm>
#include <cstdio>
#include <utility>

using namespace ctp;
using ctx::Abstraction;

namespace {

double median3(const facts::FactDB &DB, const ctx::Config &Cfg,
               const analysis::SolverOptions &SO, analysis::Results *Out) {
  double A = 0, B = 0, C = 0;
  {
    analysis::Results R = analysis::solve(DB, Cfg, SO);
    A = R.Stat.Seconds;
  }
  {
    analysis::Results R = analysis::solve(DB, Cfg, SO);
    B = R.Stat.Seconds;
  }
  analysis::Results R = analysis::solve(DB, Cfg, SO);
  C = R.Stat.Seconds;
  if (Out)
    *Out = std::move(R);
  double Lo = std::min(std::min(A, B), C);
  double Hi = std::max(std::max(A, B), C);
  return A + B + C - Lo - Hi;
}

} // namespace

int main() {
  std::printf("Provenance-recording overhead (median of 3 solves):\n\n");
  std::printf("%-10s %-16s %10s %10s %9s %10s %6s\n", "preset", "config",
              "off", "on", "overhead", "nodes", "trunc");

  const ctx::Config Configs[] = {
      ctx::insensitive(Abstraction::TransformerString),
      ctx::twoObjectH(Abstraction::TransformerString),
  };
  for (const char *Preset : {"luindex", "pmd", "bloat"}) {
    facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
    for (const ctx::Config &Cfg : Configs) {
      analysis::Results Off;
      double TOff = median3(DB, Cfg, {}, &Off);

      analysis::SolverOptions SO;
      SO.Provenance.Enabled = true;
      analysis::Results On;
      double TOn = median3(DB, Cfg, SO, &On);

      std::printf("%-10s %-16s %8.1fms %8.1fms %+8.1f%% %10zu %6s\n", Preset,
                  Cfg.name().c_str(), TOff * 1e3, TOn * 1e3,
                  (TOn / TOff - 1.0) * 1e2, On.Prov ? On.Prov->size() : 0,
                  On.Prov && On.Prov->truncated() ? "yes" : "no");
      if (On.Stat.NumPts != Off.Stat.NumPts)
        std::printf("  WARNING: recording changed |pts| (%zu vs %zu)\n",
                    On.Stat.NumPts, Off.Stat.NumPts);
    }
  }
  std::printf("\n'nodes' is one entry per first-derived tuple (the graph\n"
              "interns rule tags and premise keys); 'off' is the default\n"
              "and pays only a never-taken branch per derivation.\n");
  return 0;
}
