//===- bench/bench_micro_ops.cpp - Primitive-operation throughput ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// google-benchmark microbenchmarks of the algebra primitives both
// abstractions are built from: transformer-string match/compose,
// truncation, inverse, context-string pair composition, and the memoized
// interned composition path the solver actually uses. These underpin the
// Figure-6 time column: a transformer composition is a few comparisons,
// so the win there comes from fact-count reduction, not cheaper ops.
//
//===----------------------------------------------------------------------===//

#include "ctx/ContextString.h"
#include "ctx/Domain.h"
#include "ctx/TransformerString.h"
#include "support/Rng.h"

#include "benchmark/benchmark.h"

using namespace ctp;
using namespace ctp::ctx;

namespace {

Transformer makeT(std::initializer_list<CtxtElem> Exits, bool Wild,
                  std::initializer_list<CtxtElem> Entries) {
  Transformer T;
  for (CtxtElem E : Exits)
    T.Exits.push_back(E);
  T.Wild = Wild;
  for (CtxtElem E : Entries)
    T.Entries.push_back(E);
  return T;
}

void BM_TransformerComposeCancelling(benchmark::State &State) {
  Transformer A = makeT({}, false, {3, 7});
  Transformer B = makeT({3, 7}, false, {9});
  for (auto _ : State) {
    auto R = compose(A, B);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_TransformerComposeCancelling);

void BM_TransformerComposeBottom(benchmark::State &State) {
  Transformer A = makeT({}, false, {3});
  Transformer B = makeT({4}, false, {});
  for (auto _ : State) {
    auto R = compose(A, B);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_TransformerComposeBottom);

void BM_TransformerComposeWildcard(benchmark::State &State) {
  Transformer A = makeT({1, 2}, true, {3});
  Transformer B = makeT({3, 4}, false, {5, 6});
  for (auto _ : State) {
    auto R = compose(A, B);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_TransformerComposeWildcard);

void BM_TransformerTruncate(benchmark::State &State) {
  Transformer A = makeT({1, 2, 3}, false, {4, 5, 6});
  for (auto _ : State) {
    Transformer R = truncate(A, 1, 2);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_TransformerTruncate);

void BM_TransformerInverse(benchmark::State &State) {
  Transformer A = makeT({1, 2}, true, {4, 5});
  for (auto _ : State) {
    Transformer R = inverse(A);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_TransformerInverse);

void BM_CtxtPairCompose(benchmark::State &State) {
  CtxtPair A{{1}, {2, 3}};
  CtxtPair B{{2, 3}, {4}};
  for (auto _ : State) {
    auto R = composePairs(A, B);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CtxtPairCompose);

/// The solver's hot path: memoized composition over interned ids. The
/// first iteration populates the cache; steady state is one hash probe.
void BM_DomainMemoizedComp(benchmark::State &State) {
  auto D = makeDomain(twoObjectH(Abstraction::TransformerString),
                      std::vector<std::uint32_t>(64, 0));
  CtxtVec Entry;
  Entry.push_back(EntryElem);
  TransformId Eps = D->record(Entry);
  // A small population of call-edge transformations.
  std::vector<TransformId> Calls;
  for (std::uint32_t H = 0; H < 32; ++H)
    Calls.push_back(D->mergeVirtual(H, H, Eps));
  std::size_t I = 0;
  for (auto _ : State) {
    auto R = D->comp(Eps, Calls[I++ & 31], 1, 2);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_DomainMemoizedComp);

/// Same composition without memoization benefit: fresh domain per batch,
/// isolating the structural cost the cache removes.
void BM_DomainUncachedComp(benchmark::State &State) {
  CtxtVec Entry;
  Entry.push_back(EntryElem);
  for (auto _ : State) {
    State.PauseTiming();
    auto D = makeDomain(twoObjectH(Abstraction::TransformerString),
                        std::vector<std::uint32_t>(64, 0));
    TransformId Eps = D->record(Entry);
    std::vector<TransformId> Calls;
    for (std::uint32_t H = 0; H < 32; ++H)
      Calls.push_back(D->mergeVirtual(H, H, Eps));
    State.ResumeTiming();
    for (std::uint32_t K = 0; K < 32; ++K) {
      auto R = D->comp(Eps, Calls[K], 1, 2);
      benchmark::DoNotOptimize(R);
    }
  }
}
BENCHMARK(BM_DomainUncachedComp);

} // namespace

BENCHMARK_MAIN();
