//===- bench/bench_fig6_main_table.cpp - The paper's Figure 6 -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Regenerates the paper's main results table: for each (synthetic,
// DaCapo-shaped) benchmark and each of the five context-sensitivity
// configurations, the sizes of the context-sensitive pts / hpts / call
// relations and the analysis time under the context-string abstraction,
// followed by the percentage decrease obtained by the transformer-string
// abstraction. For 2-type+H it additionally reports the context-
// insensitive fact counts and the transformer abstraction's precision
// loss (the "(+n)" column of the paper). Ends with the geometric-mean
// rows.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "support/Stats.h"
#include "workload/Presets.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ctp;
using ctx::Abstraction;
using ctx::Config;

namespace {

struct ConfigSpec {
  const char *Label;
  Config (*Make)(Abstraction);
};

const ConfigSpec Configs[] = {
    {"1-call", ctx::oneCall},       {"1-call+H", ctx::oneCallH},
    {"1-object", ctx::oneObject},   {"2-object+H", ctx::twoObjectH},
    {"2-type+H", ctx::twoTypeH},
};

double pct(double Base, double New) {
  if (Base <= 0.0)
    return 0.0;
  return (Base - New) / Base * 100.0;
}

/// Repeats a solve until it has consumed a minimum wall-clock budget and
/// returns the minimum time, stabilizing the tiny-benchmark timings.
double timedSolve(const facts::FactDB &DB, const Config &Cfg,
                  analysis::Results &Out) {
  double Best = 1e9;
  double Spent = 0.0;
  int Runs = 0;
  while (Runs < 1 || (Spent < 0.2 && Runs < 5)) {
    analysis::Results R = analysis::solve(DB, Cfg);
    Best = std::min(Best, R.Stat.Seconds);
    Spent += R.Stat.Seconds;
    Out = std::move(R);
    ++Runs;
  }
  return Best;
}

} // namespace

int main() {
  std::printf("Figure 6: context-sensitive relation sizes and analysis "
              "time.\n");
  std::printf("First value: context strings; percentage: decrease with "
              "transformer strings.\n");
  std::printf("2-type+H also lists CI facts and the transformer "
              "abstraction's precision loss (+n).\n\n");

  // Collected ratios (transformer / context-string) for the geo-means.
  std::vector<double> TotalRatios, TimeRatios;

  std::printf("%-9s %-12s %10s %10s %10s %12s %10s\n", "bench", "config",
              "pts", "hpts", "call", "total", "time");
  for (const std::string &Name : workload::presetNames()) {
    // The table covers the language of Figure 3 (no static fields), like
    // the paper's presented rules. Static-field flows sever method
    // contexts and flood the *plain* transformer solver with subsuming
    // wildcard facts; bench_subsumption_collapse quantifies that effect
    // and the Section-8 collapsing extension that removes it.
    workload::WorkloadParams Params = workload::presetParams(Name);
    Params.GlobalFields = 0;
    facts::FactDB DB = facts::extract(workload::generate(Params));
    for (const ConfigSpec &CS : Configs) {
      analysis::Results Cs, Ts;
      double CsTime =
          timedSolve(DB, CS.Make(Abstraction::ContextString), Cs);
      double TsTime =
          timedSolve(DB, CS.Make(Abstraction::TransformerString), Ts);

      std::printf("%-9s %-12s %9zu %9zu %9zu %11zu %8.1fms\n",
                  Name.c_str(), CS.Label, Cs.Stat.NumPts, Cs.Stat.NumHpts,
                  Cs.Stat.NumCall, Cs.Stat.total(), CsTime * 1e3);
      std::printf("%-9s %-12s %8.1f%% %8.1f%% %8.1f%% %10.1f%% %8.1f%%\n",
                  "", "  (ts)",
                  pct(static_cast<double>(Cs.Stat.NumPts),
                      static_cast<double>(Ts.Stat.NumPts)),
                  pct(static_cast<double>(Cs.Stat.NumHpts),
                      static_cast<double>(Ts.Stat.NumHpts)),
                  pct(static_cast<double>(Cs.Stat.NumCall),
                      static_cast<double>(Ts.Stat.NumCall)),
                  pct(static_cast<double>(Cs.Stat.total()),
                      static_cast<double>(Ts.Stat.total())),
                  pct(CsTime, TsTime));

      if (Cs.Stat.total() > 0 && Ts.Stat.total() > 0) {
        TotalRatios.push_back(static_cast<double>(Ts.Stat.total()) /
                              static_cast<double>(Cs.Stat.total()));
        TimeRatios.push_back(TsTime / CsTime);
      }

      if (std::string(CS.Label) == "2-type+H") {
        auto CsPts = Cs.ciPts().size(), TsPts = Ts.ciPts().size();
        auto CsH = Cs.ciHpts().size(), TsH = Ts.ciHpts().size();
        auto CsC = Cs.ciCall().size(), TsC = Ts.ciCall().size();
        std::printf("%-9s %-12s CI pts %zu(+%zu) hpts %zu(+%zu) call "
                    "%zu(+%zu)\n",
                    "", "  (CI)", CsPts, TsPts - CsPts, CsH, TsH - CsH,
                    CsC, TsC - CsC);
      }
    }
    std::printf("\n");
  }

  std::printf("Geometric mean decrease: total facts %.1f%%, time %.1f%%\n",
              (1.0 - geometricMean(TotalRatios)) * 100.0,
              (1.0 - geometricMean(TimeRatios)) * 100.0);
  std::printf("(paper, real DaCapo at 2-object+H: 29%% facts / 27%% "
              "time)\n");
  return 0;
}
