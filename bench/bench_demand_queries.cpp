//===- bench/bench_demand_queries.cpp - Section 10 demand workloads -------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Section 10 names demand-driven workloads as future work for the
// transformer abstraction. This bench quantifies the demand-vs-exhaustive
// trade on the synthetic DaCapo-shaped presets at the context-insensitive
// level: per-query cost (visited variables, steps, time) against one
// exhaustive solve, plus the distribution across random query variables.
//
//===----------------------------------------------------------------------===//

#include "cfl/Demand.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "workload/Presets.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace ctp;

int main() {
  std::printf("Demand-driven queries vs exhaustive CI analysis "
              "(Section 10 direction).\n\n");
  std::printf("%-9s %8s %10s %12s %12s %12s %12s\n", "bench", "vars",
              "exh-time", "qry-median", "qry-p90", "vars-median",
              "vars-p90");

  for (const std::string &Name : workload::presetNames()) {
    facts::FactDB DB = facts::extract(workload::generatePreset(Name));

    Stopwatch ExhTimer;
    cfl::OracleResult O = cfl::solveInsensitive(DB);
    double ExhSeconds = ExhTimer.seconds();
    (void)O;

    cfl::DemandSolver D(DB);
    Rng R(0xDECAF ^ std::hash<std::string>{}(Name));
    const unsigned NumQueries = 64;
    std::vector<double> Times;
    std::vector<std::size_t> Visited;
    for (unsigned Q = 0; Q < NumQueries; ++Q) {
      std::uint32_t Var =
          static_cast<std::uint32_t>(R.nextBelow(DB.numVars()));
      Stopwatch T;
      cfl::DemandAnswer A = D.query(Var);
      Times.push_back(T.seconds());
      Visited.push_back(A.RelevantVars);
    }
    std::sort(Times.begin(), Times.end());
    std::sort(Visited.begin(), Visited.end());
    std::printf("%-9s %8zu %8.2fms %10.3fms %10.3fms %12zu %12zu\n",
                Name.c_str(), DB.numVars(), ExhSeconds * 1e3,
                Times[NumQueries / 2] * 1e3,
                Times[(NumQueries * 9) / 10] * 1e3,
                Visited[NumQueries / 2], Visited[(NumQueries * 9) / 10]);
  }

  std::printf("\nShape: a median query touches a small fraction of the "
              "variables; heavy queries (p90)\napproach exhaustive cost, "
              "which is what motivates the paper's interest in combining\n"
              "demand-driven evaluation with the transformer abstraction's "
              "local summaries.\n");
  return 0;
}
