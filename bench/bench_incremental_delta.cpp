//===- bench/bench_incremental_delta.cpp - Re-solve vs cold solve ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// What does a transactional commit cost relative to starting over? For
// each preset, solve 2-object+H once with provenance (the resident
// service's steady state), then apply deltas of growing size — pure
// additions and pure removals of assign edges — and compare the median
// incremental re-solve (analysis/Incremental.h) against the median cold
// solve of the same edited facts. Every pair is checked to land on the
// same fixpoint sizes, so the table can't quietly trade speed for
// wrong answers. The removal rows exercise the DRed-style invalidation
// walk; `inval` counts tuples it tore down and re-derivation had to
// reconsider.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "support/Stats.h"
#include "workload/Presets.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace ctp;

namespace {

bool hasAssign(const facts::FactDB &DB, facts::Id From, facts::Id To) {
  for (const auto &F : DB.Assigns)
    if (F.From == From && F.To == To)
      return true;
  return false;
}

/// An edited copy of \p DB with \p K assign edges added (absent pairs in
/// a deterministic scan order), summarized into \p D.
facts::FactDB withAddedEdges(const facts::FactDB &DB, std::size_t K,
                             analysis::InputDelta &D) {
  facts::FactDB Edited = DB;
  std::size_t Made = 0;
  for (facts::Id A = 0; A < Edited.numVars() && Made < K; ++A)
    for (facts::Id B = 0; B < Edited.numVars() && Made < K; ++B) {
      if (A == B || hasAssign(Edited, A, B))
        continue;
      Edited.Assigns.push_back({A, B});
      D.AddAssigns.push_back({A, B});
      ++Made;
    }
  return Edited;
}

/// An edited copy of \p DB with its first \p K assign edges removed.
facts::FactDB withRemovedEdges(const facts::FactDB &DB, std::size_t K,
                               analysis::InputDelta &D) {
  facts::FactDB Edited = DB;
  K = std::min(K, Edited.Assigns.size());
  for (std::size_t I = 0; I < K; ++I)
    D.RmAssigns.push_back(Edited.Assigns[I]);
  Edited.Assigns.erase(Edited.Assigns.begin(),
                       Edited.Assigns.begin() + static_cast<long>(K));
  return Edited;
}

template <typename Fn> double median3(Fn &&Run) {
  double A = Run(), B = Run(), C = Run();
  double Lo = std::min(std::min(A, B), C);
  double Hi = std::max(std::max(A, B), C);
  return A + B + C - Lo - Hi;
}

void row(const char *Preset, const facts::FactDB &Base,
         const analysis::Results &Prev, const ctx::Config &Cfg,
         const char *Kind, std::size_t K, const facts::FactDB &Edited,
         const analysis::InputDelta &D) {
  analysis::IncrementalOptions IO;
  IO.MaxDamageRatio = -1.0; // Time the incremental path itself.

  std::size_t Invalidated = 0;
  bool TookIncremental = true;
  std::size_t IncPts = 0;
  double TInc = median3([&] {
    Stopwatch W;
    analysis::IncrementalOutcome Out =
        analysis::resolveIncremental(Edited, Cfg, Prev, D, IO);
    Invalidated = Out.Invalidated;
    TookIncremental = Out.Incremental;
    IncPts = Out.R.Pts.size();
    return W.seconds();
  });
  std::size_t ColdPts = 0;
  double TCold = median3([&] {
    Stopwatch W;
    analysis::Results R = analysis::solve(Edited, Cfg);
    ColdPts = R.Pts.size();
    return W.seconds();
  });

  std::printf("%-10s %-4s %4zu %10.2fms %10.2fms %8.1fx %8zu %s\n", Preset,
              Kind, K, TInc * 1e3, TCold * 1e3,
              TInc > 0 ? TCold / TInc : 0.0, Invalidated,
              TookIncremental ? "" : "  (fell back cold!)");
  if (IncPts != ColdPts)
    std::printf("  WARNING: |pts| diverged (incremental %zu vs cold %zu)\n",
                IncPts, ColdPts);
  (void)Base;
}

} // namespace

int main() {
  std::printf("Incremental delta re-solve vs cold solve "
              "(2-object+H, median of 3):\n\n");
  std::printf("%-10s %-4s %4s %12s %12s %9s %8s\n", "preset", "kind",
              "ops", "incremental", "cold", "speedup", "inval");

  const ctx::Config Cfg =
      ctx::twoObjectH(ctx::Abstraction::TransformerString);
  for (const char *Preset : {"luindex", "pmd", "bloat"}) {
    facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
    analysis::SolverOptions SO;
    SO.Provenance.Enabled = true;
    analysis::Results Prev = analysis::solve(DB, Cfg, SO);

    for (std::size_t K : {1u, 4u, 16u}) {
      analysis::InputDelta DAdd;
      facts::FactDB Added = withAddedEdges(DB, K, DAdd);
      row(Preset, DB, Prev, Cfg, "add", K, Added, DAdd);
    }
    for (std::size_t K : {1u, 4u, 16u}) {
      analysis::InputDelta DRm;
      facts::FactDB Removed = withRemovedEdges(DB, K, DRm);
      row(Preset, DB, Prev, Cfg, "rm", K, Removed, DRm);
    }
  }
  std::printf("\n'inval' is the DRed teardown frontier (0 for pure\n"
              "additions); the damage-budget heuristic is disabled here\n"
              "so the incremental path is timed even when a cold solve\n"
              "would have been cheaper.\n");
  return 0;
}
