//===- bench/bench_fig7_subsumption.cpp - Figure 7 / Section 8 ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Reproduces the subsuming-facts phenomenon: first on the exact Figure-7
// program (v receives both an ε fact and a č1·ĉ1 fact under 1-call+H),
// then quantified on the bloat-shaped preset, where the AST parent-field
// + stack pattern makes transformer strings derive facts subsumed by
// more general ones — the mechanism behind bloat's poor 1-call+H time in
// the paper (-36.3% there).
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/Solver.h"
#include "ctx/Semantics.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"
#include "workload/Presets.h"

#include <cstdio>
#include <map>
#include <vector>

using namespace ctp;
using ctx::Abstraction;
using ctx::Transformer;

namespace {

/// Counts (per pts key) facts whose transformer is subsumed by another
/// fact's transformer on the same (var, heap) pair, using the exact
/// canonical-form subsumption predicate from the ctx library.
std::size_t countSubsumedFacts(const analysis::Results &R) {
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<Transformer>>
      ByKey;
  for (const auto &F : R.Pts)
    ByKey[{F.Var, F.Heap}].push_back(R.Dom->transformer(F.T));
  std::size_t Subsumed = 0;
  for (const auto &[Key, Ts] : ByKey) {
    for (std::size_t I = 0; I < Ts.size(); ++I)
      for (std::size_t J = 0; J < Ts.size(); ++J)
        if (I != J && subsumes(Ts[J], Ts[I])) {
          ++Subsumed;
          break;
        }
  }
  return Subsumed;
}

} // namespace

int main() {
  // --- Part 1: the exact Figure 7 program. ---
  workload::Figure7Program F = workload::figure7();
  facts::FactDB DB = facts::extract(F.P);
  std::printf("Figure 7 program:\n%s\n", ir::printProgram(F.P).c_str());

  analysis::Results Ts =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  analysis::Results Cs =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));

  std::printf("1-call+H facts for variable v pointing to h1:\n");
  for (const auto &P : Ts.Pts)
    if (P.Var == F.V && P.Heap == F.H1)
      std::printf("  transformer: %s\n", Ts.Dom->toString(P.T).c_str());
  std::size_t CsCount = 0;
  for (const auto &P : Cs.Pts)
    if (P.Var == F.V && P.Heap == F.H1)
      ++CsCount;
  std::printf("  context-string column derives %zu fact(s) for the same "
              "pair.\n\n",
              CsCount);
  std::printf("Subsumed transformer pts facts in Figure 7: %zu (the "
              "č1·ĉ1 fact is subsumed by ε)\n\n",
              countSubsumedFacts(Ts));

  // --- Part 2: quantify on the bloat-shaped preset. ---
  std::printf("bloat-shaped preset under 1-call+H:\n");
  facts::FactDB Bloat =
      facts::extract(workload::generatePreset("bloat"));
  analysis::Results BloatTs =
      analysis::solve(Bloat, ctx::oneCallH(Abstraction::TransformerString));
  analysis::Results BloatCs =
      analysis::solve(Bloat, ctx::oneCallH(Abstraction::ContextString));
  std::size_t Subsumed = countSubsumedFacts(BloatTs);
  std::printf("  context strings:     %zu pts facts, %.1f ms\n",
              BloatCs.Stat.NumPts, BloatCs.Stat.Seconds * 1e3);
  std::printf("  transformer strings: %zu pts facts, %.1f ms\n",
              BloatTs.Stat.NumPts, BloatTs.Stat.Seconds * 1e3);
  std::printf("  subsumed transformer facts: %zu (%.1f%% of pts)\n",
              Subsumed,
              BloatTs.Stat.NumPts
                  ? 100.0 * static_cast<double>(Subsumed) /
                        static_cast<double>(BloatTs.Stat.NumPts)
                  : 0.0);

  // Section 7's configuration lens: the paper attributes bloat's
  // subsumption to points-to facts arriving in both "we" and "xwe"
  // configurations through the parent-field and stack paths.
  std::printf("  pts facts per x*w?e* configuration:");
  for (const auto &[Tag, Count] :
       analysis::ptsConfigurationHistogram(BloatTs))
    std::printf(" %s:%zu", Tag.empty() ? "eps" : Tag.c_str(), Count);
  std::printf("\n");
  std::printf("\nPaper, Section 8: subsuming facts are redundant work the "
              "transformer abstraction performs;\nbloat suffers most, "
              "which erases its 1-call+H time win despite fewer total "
              "facts.\n\n");

  // --- Part 3: the optimization Section 8 proposes but does not pursue
  // ("customize the Datalog engine to delete subsumed facts") is
  // implemented here as a solver option; measure its effect. ---
  analysis::SolverOptions Collapse;
  Collapse.CollapseSubsumedPts = true;
  analysis::Results BloatCol = analysis::solve(
      Bloat, ctx::oneCallH(Abstraction::TransformerString), Collapse);
  std::printf("with subsumption collapsing (our extension of Section 8's "
              "proposal):\n");
  std::printf("  live pts facts: %zu (was %zu), retired/dropped: %zu, "
              "time %.1f ms (was %.1f ms)\n",
              BloatCol.Stat.NumPts, BloatTs.Stat.NumPts,
              BloatCol.Stat.CollapsedPts, BloatCol.Stat.Seconds * 1e3,
              BloatTs.Stat.Seconds * 1e3);
  std::printf("  residual subsumed facts after collapsing: %zu\n",
              countSubsumedFacts(BloatCol));
  return 0;
}
