//===- bench/bench_fig1_flavours.cpp - Figure 1 / Section 2 table ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Regenerates the Section-2 narrative around Figure 1: the points-to sets
// of x1/y1/x2/y2/z under context-insensitive, 1-call, 2-call, 1-object,
// and 2-object+H analyses, for both abstractions, plus the PAG edge
// summary of Figure 2 for the same program.
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/Solver.h"
#include "cfl/Oracle.h"
#include "cfl/Pag.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"
#include "workload/Presets.h"

#include <cstdio>
#include <string>

using namespace ctp;
using ctx::Abstraction;
using ctx::Config;

namespace {

std::string fmtPts(const analysis::Results &R, const facts::FactDB &DB,
                   ir::VarId V) {
  std::string S = "{";
  bool First = true;
  for (std::uint32_t H : R.pointsTo(V)) {
    S += (First ? "" : ",") + DB.HeapNames[H];
    First = false;
  }
  return S + "}";
}

} // namespace

int main() {
  workload::Figure1Program F = workload::figure1();
  facts::FactDB DB = facts::extract(F.P);

  std::printf("Figure 1 / Section 2: precision per flavour and level.\n\n");
  std::printf("%-22s %-12s %-12s %-12s %-12s %-10s\n", "config", "x1",
              "y1", "x2", "y2", "z");

  struct Row {
    const char *Label;
    Config Cfg;
  };
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    Row Rows[] = {
        {"unify", ctx::unification(A)},
        {"insensitive", ctx::insensitive(A)},
        {"cutshortcut", ctx::cutShortcut(A)},
        {"1-call", ctx::oneCall(A)},
        {"2-call", Config{A, ctx::Flavour::CallSite, 2, 0}},
        {"1-call+H", ctx::oneCallH(A)},
        {"1-object", ctx::oneObject(A)},
        {"2-object+H", ctx::twoObjectH(A)},
        {"2-type+H", ctx::twoTypeH(A)},
        {"2-hybrid+H", ctx::twoHybridH(A)},
    };
    for (const Row &Rw : Rows) {
      analysis::Results R = analysis::solve(DB, Rw.Cfg);
      std::printf("%-22s %-12s %-12s %-12s %-12s %-10s\n",
                  R.Config.name().c_str(), fmtPts(R, DB, F.X1).c_str(),
                  fmtPts(R, DB, F.Y1).c_str(), fmtPts(R, DB, F.X2).c_str(),
                  fmtPts(R, DB, F.Y2).c_str(), fmtPts(R, DB, F.Z).c_str());
    }
    std::printf("\n");
  }

  std::printf("Expected per the paper: 1-call separates x1/y1 but merges "
              "x2/y2; 1-object the reverse;\n2-call and 2-object+H "
              "separate all; z empties once heap contexts split the two "
              "m() objects.\n\n");

  // Speed/precision frontier: the degradation ladder on a generated
  // preset — wall time and ci tuple counts per rung. This is the source
  // of the EXPERIMENTS.md flavour table; unify must come in under
  // insensitive, cutshortcut within the same order of magnitude.
  {
    facts::FactDB Big = facts::extract(workload::generatePreset("pmd"));
    std::printf("Ladder frontier on preset 'pmd' (%zu vars):\n",
                Big.numVars());
    std::printf("%-14s %10s %10s %10s %10s\n", "rung", "seconds",
                "ci-pts", "ci-calls", "work");
    for (const Config &Cfg : analysis::defaultLadder(
             ctx::twoObjectH(Abstraction::TransformerString))) {
      analysis::Results R = analysis::solve(Big, Cfg);
      std::printf("%-14s %10.3f %10zu %10zu %10zu\n",
                  R.Config.name().c_str(), R.Stat.Seconds,
                  R.ciPts().size(), R.ciCall().size(), R.Stat.WorkItems);
    }
    std::printf("\n");
  }

  // Figure 2 view: the PAG of the program with on-the-fly call edges.
  cfl::OracleResult O = cfl::solveInsensitive(DB);
  std::vector<cfl::CallEdge> Calls;
  for (const auto &C : O.Calls)
    Calls.push_back({C[0], C[1]});
  cfl::Pag G(DB, Calls);
  std::size_t Kind[6] = {};
  for (const auto &E : G.edges())
    ++Kind[static_cast<unsigned>(E.Kind)];
  std::printf("Figure 2 (PAG of this program): %zu nodes; edges: new=%zu "
              "assign=%zu store=%zu load=%zu entry=%zu exit=%zu\n",
              G.numNodes(), Kind[0], Kind[1], Kind[2], Kind[3], Kind[4],
              Kind[5]);
  return 0;
}
