//===- bench/bench_client_precision.cpp - Client-level precision ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Supporting table (not in the paper, which measures precision by CI fact
// counts): what the context-sensitivity configurations buy *clients* —
// average points-to set size, may-alias density over a variable sample,
// and monomorphic virtual call sites. Run for both abstractions to
// re-confirm the precision-equality claim at the client level.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "clients/Alias.h"
#include "clients/Devirtualize.h"
#include "clients/Taint.h"
#include "facts/Extract.h"
#include "support/Rng.h"
#include "workload/Presets.h"

#include <cstdio>

using namespace ctp;
using ctx::Abstraction;
using ctx::Config;

int main() {
  const char *Preset = "pmd";
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  std::printf("Client-level precision on preset '%s' (%zu vars, %zu "
              "virtual sites).\n\n",
              Preset, DB.numVars(), DB.VirtualInvokes.size());

  // A fixed random sample of variables for the alias-density metric.
  std::vector<std::uint32_t> Sample;
  Rng R(0xA11A5);
  for (int I = 0; I < 60; ++I)
    Sample.push_back(
        static_cast<std::uint32_t>(R.nextBelow(DB.numVars())));

  std::printf("%-18s %12s %12s %12s %12s %12s\n", "config", "ci-pts",
              "avg-pts-set", "alias-pairs", "monomorph", "taint-warn");

  struct Spec {
    const char *Label;
    Config (*Make)(Abstraction);
  };
  const Spec Specs[] = {
      {"unify", ctx::unification},       {"insensitive", ctx::insensitive},
      {"cutshortcut", ctx::cutShortcut}, {"1-call", ctx::oneCall},
      {"1-call+H", ctx::oneCallH},       {"1-object", ctx::oneObject},
      {"2-object+H", ctx::twoObjectH},   {"2-type+H", ctx::twoTypeH},
      {"2-hybrid+H", ctx::twoHybridH},
  };

  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    std::printf("--- %s\n", A == Abstraction::ContextString
                                ? "context strings"
                                : "transformer strings");
    for (const Spec &S : Specs) {
      analysis::Results Res = analysis::solve(DB, S.Make(A));
      auto Ci = Res.ciPts();
      // Average points-to set size over variables with any pointee.
      std::size_t Vars = 0;
      std::uint32_t Cur = UINT32_MAX;
      for (const auto &P : Ci)
        if (P[0] != Cur) {
          Cur = P[0];
          ++Vars;
        }
      double Avg = Vars ? static_cast<double>(Ci.size()) /
                              static_cast<double>(Vars)
                        : 0.0;
      clients::AliasOracle Alias(Res);
      clients::DevirtSummary Devirt = clients::devirtualize(DB, Res);
      clients::SourceMap SM(DB);
      clients::Report Rep;
      clients::checkTaint(DB, Res, SM, Rep);
      Rep.finalize();
      std::size_t TaintWarns = 0;
      for (const clients::Finding &Fd : Rep.findings())
        if (Fd.RuleId == "taint.flow")
          ++TaintWarns;
      std::printf("%-18s %12zu %12.2f %12zu %12zu %12zu\n", S.Label,
                  Ci.size(), Avg, Alias.countAliasPairs(Sample),
                  Devirt.MonomorphicSites, TaintWarns);
    }
  }
  std::printf("\nPrecision metrics must match line-for-line between the "
              "two abstractions except possibly\nunder 2-type+H "
              "(Theorem 6.2); context sensitivity monotonically shrinks "
              "alias density.\n");
  return 0;
}
