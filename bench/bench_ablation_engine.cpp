//===- bench/bench_ablation_engine.cpp - Section 7 ablation ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Section 7 argues that a naive transformer-string instantiation (a
// generic engine treating comp as an opaque functor over structured
// values) evaluates with weaker indices and is much slower; recovering
// the context-string indexing scheme (there: configuration-decomposed
// relations; here: interned ids + memoized composition in a specialized
// solver) restores the advantage. This ablation measures:
//
//   1. generic Datalog engine vs specialized solver, per abstraction;
//   2. the specialized solver's context-string vs transformer-string
//      times (the Figure-6 "time" column's mechanism).
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/Presets.h"

#include <cstdio>

using namespace ctp;
using ctx::Abstraction;

int main() {
  const char *Preset = "luindex";
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  std::printf("Ablation on preset '%s' (%zu input facts), config "
              "2-object+H:\n\n",
              Preset, DB.numInputFacts());

  std::printf("%-22s %-22s %12s %14s\n", "evaluator", "abstraction",
              "time", "derivations");
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    const char *AbsName = A == Abstraction::ContextString
                              ? "context-string"
                              : "transformer-string";
    ctx::Config Cfg = ctx::twoObjectH(A);

    analysis::Results Fast = analysis::solve(DB, Cfg);
    std::printf("%-22s %-22s %10.1fms %14zu\n", "specialized solver",
                AbsName, Fast.Stat.Seconds * 1e3, Fast.Stat.WorkItems);

    std::size_t Derivations = 0;
    analysis::Results Slow = analysis::solveViaDatalog(DB, Cfg,
                                                       &Derivations);
    std::printf("%-22s %-22s %10.1fms %14zu\n", "generic datalog",
                AbsName, Slow.Stat.Seconds * 1e3, Derivations);

    if (Fast.Stat.NumPts != Slow.Stat.NumPts)
      std::printf("  WARNING: evaluators disagree on |pts| (%zu vs %zu)\n",
                  Fast.Stat.NumPts, Slow.Stat.NumPts);
  }

  std::printf("\nExpected shape (Section 7): the generic engine is an "
              "order of magnitude slower than the\nspecialized solver; "
              "within the specialized solver, transformer strings derive "
              "fewer facts\nand take less time than context strings at "
              "2-object+H.\n");
  return 0;
}
