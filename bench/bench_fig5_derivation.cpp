//===- bench/bench_fig5_derivation.cpp - Figure 5 reproduction ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Prints the two derivation columns of Figure 5 side by side: every
// derived pts/call/reach fact of the example program under m = 1, h = 1
// call-site sensitivity, for the context-string and transformer-string
// abstractions. The context-string column enumerates contexts (12 pts
// facts); the transformer column compresses them (5 pts facts).
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace ctp;
using ctx::Abstraction;

namespace {

ctx::ElemPrinter makePrinter(const facts::FactDB &DB) {
  return [&DB](ctx::CtxtElem E) -> std::string {
    if (E == ctx::EntryElem)
      return "entry";
    std::uint32_t Id = ctx::entityOfElem(E);
    // Call-site flavour: elements are invocation sites.
    return Id < DB.InvokeNames.size() ? DB.InvokeNames[Id]
                                      : "#" + std::to_string(Id);
  };
}

std::vector<std::string> renderColumn(const analysis::Results &R,
                                      const facts::FactDB &DB) {
  ctx::ElemPrinter P = makePrinter(DB);
  std::vector<std::string> Lines;
  for (const auto &F : R.Pts)
    Lines.push_back("pts(" + DB.VarNames[F.Var] + ", " +
                    DB.HeapNames[F.Heap] + ", " + R.Dom->toString(F.T, P) +
                    ")");
  for (const auto &F : R.Call)
    Lines.push_back("call(" + DB.InvokeNames[F.Invoke] + ", " +
                    DB.MethodNames[F.Method] + ", " +
                    R.Dom->toString(F.T, P) + ")");
  for (const auto &F : R.Reach)
    Lines.push_back("reach(" + DB.MethodNames[F.Method] + ", " +
                    ctx::printCtxtVec((*R.ReachCtxts)[F.CtxtId], P) + ")");
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

} // namespace

int main() {
  workload::Figure5Program F = workload::figure5();
  facts::FactDB DB = facts::extract(F.P);
  std::printf("Figure 5 program:\n%s\n", ir::printProgram(F.P).c_str());

  analysis::Results Cs =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));

  std::printf("Context-string column (m=1, h=1 call-site):\n");
  for (const std::string &L : renderColumn(Cs, DB))
    std::printf("  %s\n", L.c_str());
  std::printf("  -> %zu pts, %zu call, %zu reach facts\n\n",
              Cs.Stat.NumPts, Cs.Stat.NumCall, Cs.Stat.NumReach);

  std::printf("Transformer-string column:\n");
  for (const std::string &L : renderColumn(Ts, DB))
    std::printf("  %s\n", L.c_str());
  std::printf("  -> %zu pts, %zu call, %zu reach facts\n\n",
              Ts.Stat.NumPts, Ts.Stat.NumCall, Ts.Stat.NumReach);

  std::printf("Paper's Figure 5: 12 vs 5 pts facts, 4 vs 3 call edges, "
              "identical CI precision.\n");
  bool SamePrecision =
      Cs.ciPts() == Ts.ciPts() && Cs.ciCall() == Ts.ciCall();
  std::printf("CI precision identical here: %s\n",
              SamePrecision ? "yes" : "NO (unexpected)");
  return 0;
}
