//===- bench/bench_checkpoint_overhead.cpp - Snapshot write cost ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// What does crash-safety cost? A checkpoint interval sweep over the bloat
// preset (the heaviest built-in workload) measures, per interval: solve
// time vs the no-checkpoint baseline, the number of snapshots written,
// and the final snapshot size — the knobs a deployment trades off when
// picking --checkpoint-every. The trip-only mode (interval 0) is the
// recommended default: zero writes until the budget actually trips.
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkpoint.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/Presets.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>

using namespace ctp;
using ctx::Abstraction;

namespace {

double median3(const facts::FactDB &DB, const ctx::Config &Cfg,
               const analysis::SolverOptions &SO, analysis::Results *Out) {
  double A = 0, B = 0, C = 0;
  {
    analysis::Results R = analysis::solve(DB, Cfg, SO);
    A = R.Stat.Seconds;
  }
  {
    analysis::Results R = analysis::solve(DB, Cfg, SO);
    B = R.Stat.Seconds;
  }
  analysis::Results R = analysis::solve(DB, Cfg, SO);
  C = R.Stat.Seconds;
  if (Out)
    *Out = std::move(R);
  double Lo = std::min(std::min(A, B), C);
  double Hi = std::max(std::max(A, B), C);
  return A + B + C - Lo - Hi;
}

} // namespace

int main() {
  const char *Preset = "bloat";
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);

  std::string Dir =
      (std::filesystem::temp_directory_path() / "ctp_bench_ckpt").string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  analysis::Results Baseline;
  double Base = median3(DB, Cfg, {}, &Baseline);
  std::printf("Checkpoint overhead on preset '%s', config %s:\n"
              "baseline (no checkpointing): %.1f ms, %zu derivations\n\n",
              Preset, Cfg.name().c_str(), Base * 1e3,
              Baseline.Stat.Progress.Derivations);

  std::printf("%-14s %10s %10s %10s %12s\n", "interval", "time", "vs base",
              "writes", "snap-size");
  for (std::uint64_t Every :
       {std::uint64_t(0), std::uint64_t(100000), std::uint64_t(20000),
        std::uint64_t(5000), std::uint64_t(1000)}) {
    analysis::SolverOptions SO;
    SO.Checkpoint.Dir = Dir;
    SO.Checkpoint.EveryDerivations = Every;
    analysis::Results R;
    double T = median3(DB, Cfg, SO, &R);

    // Count writes by rerunning once with a fresh dir is overkill; the
    // interval bounds it: ceil(derivations / interval) periodic writes.
    std::uint64_t Writes =
        Every == 0 ? 0 : (R.Stat.Progress.Derivations + Every - 1) / Every;
    std::string Path = analysis::checkpointPath(Dir);
    // A converged run removes its snapshot; measure size via one
    // explicitly interrupted run at half budget.
    std::uintmax_t Size = 0;
    {
      analysis::SolverOptions Half = SO;
      Half.Budget.MaxDerivations = R.Stat.Progress.Derivations / 2;
      (void)analysis::solve(DB, Cfg, Half);
      if (std::filesystem::exists(Path)) {
        Size = std::filesystem::file_size(Path);
        std::filesystem::remove(Path);
      }
    }
    char Label[32];
    if (Every == 0)
      std::snprintf(Label, sizeof(Label), "trip-only");
    else
      std::snprintf(Label, sizeof(Label), "%llu",
                    static_cast<unsigned long long>(Every));
    std::printf("%-14s %8.1fms %+9.1f%% %10llu %10.1fKB\n", Label, T * 1e3,
                (T / Base - 1.0) * 1e2,
                static_cast<unsigned long long>(Writes), Size / 1024.0);
    if (R.Stat.NumPts != Baseline.Stat.NumPts)
      std::printf("  WARNING: checkpointed run disagrees on |pts| "
                  "(%zu vs %zu)\n",
                  R.Stat.NumPts, Baseline.Stat.NumPts);
  }
  std::filesystem::remove_all(Dir);
  std::printf("\nsizes are of the mid-run snapshot at half the derivation "
              "count;\nthe trip-only row pays nothing until a budget "
              "actually trips.\n");
  return 0;
}
