//===- bench/bench_governor_ladder.cpp - Governor overhead and ladder -----===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Two measurements for the resource governor:
//
//   1. Overhead: an unlimited BudgetSpec still makes the solver poll the
//      meter at rule-firing granularity; comparing against the default
//      (no explicit budget) run bounds the cost of that polling.
//
//   2. Ladder behaviour: a sweep of wall-clock deadlines over the bloat
//      preset shows which rung of the degradation ladder answers at each
//      budget — the production analogue of Figure 6's timeout entries,
//      where a blown budget costs precision rather than the whole run.
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "support/Budget.h"
#include "workload/Presets.h"

#include <cstdio>

using namespace ctp;
using ctx::Abstraction;

int main() {
  const char *Preset = "bloat";
  facts::FactDB DB = facts::extract(workload::generatePreset(Preset));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::ContextString);
  std::printf("Governor bench on preset '%s' (%zu input facts), config "
              "%s:\n\n",
              Preset, DB.numInputFacts(), Cfg.name().c_str());

  // 1. Meter overhead: same run with and without an (unlimited) budget.
  analysis::Results Plain = analysis::solve(DB, Cfg);
  analysis::SolverOptions Budgeted;
  Budgeted.Budget.MaxDerivations = ~0ull; // Explicit but never trips.
  analysis::Results Metered = analysis::solve(DB, Cfg, Budgeted);
  std::printf("meter overhead: %8.1fms unmetered, %8.1fms metered "
              "(%+.1f%%)\n\n",
              Plain.Stat.Seconds * 1e3, Metered.Stat.Seconds * 1e3,
              (Metered.Stat.Seconds / Plain.Stat.Seconds - 1.0) * 1e2);
  if (Metered.Stat.NumPts != Plain.Stat.NumPts)
    std::printf("  WARNING: metered run disagrees on |pts| (%zu vs %zu)\n",
                Metered.Stat.NumPts, Plain.Stat.NumPts);

  // 2. Deadline sweep down the degradation ladder.
  std::printf("%-12s %-18s %6s %12s %10s\n", "deadline", "answering rung",
              "rungs", "total-time", "converged");
  for (std::uint64_t DeadlineMs : {1000, 200, 50, 10, 2}) {
    analysis::FallbackOptions Opts;
    Opts.Budget.DeadlineMs = DeadlineMs;
    analysis::FallbackOutcome O =
        analysis::solveWithFallback(DB, Cfg, Opts);
    double Total = 0.0;
    for (const auto &A : O.Attempts)
      Total += A.Seconds;
    std::printf("%8llums   %-18s %6zu %10.1fms %10s\n",
                static_cast<unsigned long long>(DeadlineMs),
                O.R.Config.name().c_str(), O.Attempts.size(), Total * 1e3,
                O.R.Stat.Term == TerminationReason::Converged ? "yes"
                                                              : "partial");
  }

  std::printf("\nExpected shape: generous deadlines answer at rung 0 "
              "(2-object+H); tighter ones descend the ladder, and the "
              "total time stays under twice the deadline because every "
              "rung halves the budget.\n");
  return 0;
}
